"""Mesh containers: per-region spectral-element arrays and the slice bundle.

Array conventions follow SPECFEM3D_GLOBE:

* per-element GLL arrays have shape ``(nspec, n, n, n[, ...])`` with the
  three local axes ordered (xi, eta, gamma) and gamma increasing with
  radius for shell elements;
* ``ibool`` maps local points to 0-based global indices within one region
  of one slice;
* coordinates are stored in km throughout the mesh stage (the solver
  non-dimensionalises on ingest).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..model.prem import RegionCode

__all__ = ["RegionMesh", "SliceMesh"]


@dataclass
class RegionMesh:
    """Spectral-element mesh of one region (crust/mantle, outer core, inner core).

    Attributes
    ----------
    region : RegionCode constant
    xyz : (nspec, n, n, n, 3) GLL coordinates in km
    ibool : (nspec, n, n, n) global point indices, 0-based
    nglob : number of distinct global points
    rho, kappa, mu : (nspec, n, n, n) material fields in SI units
    q_mu : (nspec, n, n, n) shear quality factor (finite everywhere solid)
    """

    region: int
    xyz: np.ndarray
    ibool: np.ndarray
    nglob: int
    rho: np.ndarray | None = None
    kappa: np.ndarray | None = None
    mu: np.ndarray | None = None
    q_mu: np.ndarray | None = None
    #: Optional transversely-isotropic moduli (a
    #: :class:`repro.kernels.anisotropic.TIModuli`); None = isotropic.
    ti_moduli: object | None = None
    #: Override of the fluid flag (used by non-PREM material models, e.g.
    #: the homogeneous solid sphere of the normal-mode validation).
    fluid_override: bool | None = None

    def __post_init__(self) -> None:
        if self.xyz.ndim != 5 or self.xyz.shape[-1] != 3:
            raise ValueError(f"xyz must be (nspec,n,n,n,3), got {self.xyz.shape}")
        if self.ibool.shape != self.xyz.shape[:-1]:
            raise ValueError(
                f"ibool shape {self.ibool.shape} does not match xyz {self.xyz.shape}"
            )
        if self.region not in RegionCode.NAMES:
            raise ValueError(f"unknown region {self.region}")

    @property
    def nspec(self) -> int:
        return self.xyz.shape[0]

    @property
    def ngll(self) -> int:
        return self.xyz.shape[1]

    @property
    def is_fluid(self) -> bool:
        if self.fluid_override is not None:
            return self.fluid_override
        return self.region == RegionCode.OUTER_CORE

    @property
    def has_materials(self) -> bool:
        return self.rho is not None

    def radii(self) -> np.ndarray:
        """Geocentric radius (km) of every GLL point, shape (nspec, n, n, n)."""
        return np.linalg.norm(self.xyz, axis=-1)

    def global_coordinates(self) -> np.ndarray:
        """(nglob, 3) coordinates of the distinct global points."""
        out = np.empty((self.nglob, 3))
        out[self.ibool.ravel()] = self.xyz.reshape(-1, 3)
        return out

    def memory_bytes(self) -> int:
        """Approximate resident size of the mesh arrays (disk-model input)."""
        total = self.xyz.nbytes + self.ibool.nbytes
        for arr in (self.rho, self.kappa, self.mu, self.q_mu):
            if arr is not None:
                total += arr.nbytes
        return total


@dataclass
class SliceMesh:
    """Everything one MPI process owns: the three region meshes plus metadata.

    ``chunk``/``iproc_xi``/``iproc_eta`` locate the slice in the
    6 x NPROC_XI^2 decomposition; ``cube_elements`` counts how many of the
    inner-core region's elements came from the central cube (they sit at
    the end of the inner-core element list).
    """

    chunk: int
    iproc_xi: int
    iproc_eta: int
    regions: dict[int, RegionMesh] = field(default_factory=dict)
    cube_elements: int = 0

    @property
    def nspec_total(self) -> int:
        return sum(r.nspec for r in self.regions.values())

    @property
    def nglob_total(self) -> int:
        return sum(r.nglob for r in self.regions.values())

    def memory_bytes(self) -> int:
        return sum(r.memory_bytes() for r in self.regions.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        per_region = {
            RegionCode.NAMES[r.region]: r.nspec for r in self.regions.values()
        }
        return (
            f"SliceMesh(chunk={self.chunk}, ixi={self.iproc_xi}, "
            f"ieta={self.iproc_eta}, nspec={per_region})"
        )
