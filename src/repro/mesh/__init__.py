"""The mesher: cubed-sphere globe meshes, numbering, sorting, surfaces."""

from .central_cube import (
    INFLATION_GAMMA,
    assign_cube_columns,
    cube_surface_radius,
    map_cube_points,
)
from .cuthill_mckee import (
    cuthill_mckee_order,
    element_adjacency,
    multilevel_cache_blocks,
    reorder_elements,
)
from .element import RegionMesh, SliceMesh
from .interfaces import (
    CouplingSurface,
    external_faces,
    face_points,
    faces_at_radius,
    match_coupling_faces,
)
from .mesher import (
    GlobalMesh,
    MesherStats,
    assign_materials,
    build_global_mesh,
    build_slice_mesh,
)
from .partition import ElementSplit, split_elements, split_slice_elements
from .numbering import (
    apply_global_permutation,
    average_global_stride,
    build_global_numbering,
    renumber_first_touch,
)
from .quality import (
    MeshResolution,
    element_size_range,
    estimate_resolution,
    estimate_time_step,
    load_balance_imbalance,
)
from .radial import central_cube_radius_km, radial_breaks_km, region_bounds_km

__all__ = [
    "INFLATION_GAMMA",
    "assign_cube_columns",
    "cube_surface_radius",
    "map_cube_points",
    "cuthill_mckee_order",
    "element_adjacency",
    "multilevel_cache_blocks",
    "reorder_elements",
    "RegionMesh",
    "SliceMesh",
    "CouplingSurface",
    "external_faces",
    "face_points",
    "faces_at_radius",
    "match_coupling_faces",
    "GlobalMesh",
    "MesherStats",
    "assign_materials",
    "build_global_mesh",
    "build_slice_mesh",
    "ElementSplit",
    "split_elements",
    "split_slice_elements",
    "apply_global_permutation",
    "average_global_stride",
    "build_global_numbering",
    "renumber_first_touch",
    "MeshResolution",
    "element_size_range",
    "estimate_resolution",
    "estimate_time_step",
    "load_balance_imbalance",
    "central_cube_radius_km",
    "radial_breaks_km",
    "region_bounds_km",
]
