"""Interior/boundary element classification for comm/compute overlap.

The overlapped time loop (paper Section 2.4 / the SPECFEM3D_GLOBE
``iphase`` loop structure) relies on one mesh-side fact: an element whose
GLL points include no slice-shared global point can contribute nothing to
an outgoing halo message.  Splitting each region's elements into

* **boundary** — at least one of the element's ``ibool`` entries is a
  halo point (shared with some neighbouring rank), and
* **interior** — none are,

lets the solver compute boundary elements first, post the halo exchange
with their (complete) shared-point contributions, and compute the interior
elements while the messages are in flight.

The split is purely index arithmetic over the existing ``ibool`` numbering
and each region's :class:`~repro.parallel.halo.RegionHalo`; it is computed
once at solver build time and the two index sets partition
``range(nspec)`` exactly (no overlap, no gap) — a property test pins this
across NEX/NPROC_XI combinations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ElementSplit", "split_elements", "split_slice_elements"]


@dataclass(frozen=True)
class ElementSplit:
    """One region's element partition: ascending element index arrays."""

    interior: np.ndarray
    boundary: np.ndarray

    @property
    def nspec(self) -> int:
        return self.interior.size + self.boundary.size

    @property
    def boundary_fraction(self) -> float:
        """Share of elements on the halo — the surface-to-volume ratio
        that bounds how much compute is available to hide messages."""
        n = self.nspec
        return self.boundary.size / n if n else 0.0


def split_elements(ibool: np.ndarray, halo_point_ids: np.ndarray) -> ElementSplit:
    """Partition elements by whether they touch any halo point.

    Parameters
    ----------
    ibool : (nspec, n, n, n) local-to-global numbering of one region.
    halo_point_ids : global point ids shared with any neighbouring rank
        (:meth:`repro.parallel.halo.RegionHalo.halo_point_ids`).

    Returns ascending ``interior``/``boundary`` index arrays that together
    enumerate every element exactly once, so kernels evaluated on the two
    subsets cover the same work as one full-mesh evaluation.
    """
    nspec = ibool.shape[0]
    if halo_point_ids.size == 0:
        return ElementSplit(
            interior=np.arange(nspec, dtype=np.int64),
            boundary=np.empty(0, dtype=np.int64),
        )
    nglob = int(ibool.max()) + 1
    is_halo_point = np.zeros(nglob, dtype=bool)
    is_halo_point[halo_point_ids] = True
    touches = is_halo_point[ibool.reshape(nspec, -1)].any(axis=1)
    all_elements = np.arange(nspec, dtype=np.int64)
    return ElementSplit(
        interior=all_elements[~touches], boundary=all_elements[touches]
    )


def split_slice_elements(slice_mesh, halos_for_rank) -> dict[int, ElementSplit]:
    """Split every region of one rank's slice: region code -> split.

    ``halos_for_rank`` maps region code to that rank's
    :class:`~repro.parallel.halo.RegionHalo`; regions without a halo entry
    (serial runs, or a region this rank shares with nobody) classify every
    element as interior, which makes the overlapped step degenerate to the
    purely local one.
    """
    splits: dict[int, ElementSplit] = {}
    for region, mesh in slice_mesh.regions.items():
        halo = halos_for_rank.get(region)
        ids = (
            halo.halo_point_ids()
            if halo is not None
            else np.empty(0, dtype=np.int64)
        )
        splits[region] = split_elements(mesh.ibool, ids)
    return splits
