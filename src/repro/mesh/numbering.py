"""Local -> global numbering: building ``ibool`` from GLL coordinates.

In the SEM, GLL points on element faces/edges/corners are shared between
neighbouring elements (Figure 3 of the paper).  The mesher must identify
coincident local points and assign each distinct location one *global*
degree-of-freedom index; the solver then sums elemental contributions into
the global arrays through ``ibool``.  Identification is done by exact
matching of coordinates rounded to a tolerance — robust because the mesher
evaluates analytic mappings, so shared points agree to machine precision.

Also provides the global-point renumbering pass the paper builds on
(Section 4.2): renumbering points in first-touch order of the element loop
minimises the memory strides of the gather/scatter into the global arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "build_global_numbering",
    "renumber_first_touch",
    "apply_global_permutation",
    "average_global_stride",
]

#: Rounding scale for coordinate matching, relative to the coordinate span.
_REL_TOLERANCE = 1e-9


def _quantise(points: np.ndarray, tolerance: float) -> np.ndarray:
    """Integer-quantised coordinates for exact dictionary matching."""
    return np.round(points / tolerance).astype(np.int64)


def build_global_numbering(
    xyz: np.ndarray, tolerance: float | None = None
) -> tuple[np.ndarray, int]:
    """Build ``ibool`` for elements with GLL coordinates ``xyz``.

    Parameters
    ----------
    xyz : (nspec, n, n, n, 3) array of GLL point coordinates.
    tolerance : matching tolerance; defaults to ``1e-9 *`` coordinate span.

    Returns
    -------
    ibool : (nspec, n, n, n) int64 array of 0-based global indices, numbered
        in first-encounter order over the element loop (so the numbering is
        already cache-friendly for that element order).
    nglob : number of distinct global points.
    """
    xyz = np.asarray(xyz, dtype=np.float64)
    if xyz.ndim != 5 or xyz.shape[-1] != 3:
        raise ValueError(f"expected (nspec, n, n, n, 3) coordinates, got {xyz.shape}")
    if tolerance is None:
        span = float(np.max(xyz) - np.min(xyz)) if xyz.size else 1.0
        tolerance = max(span, 1.0) * _REL_TOLERANCE
    flat = xyz.reshape(-1, 3)
    keys = _quantise(flat, tolerance)
    # np.unique on the quantised rows gives the distinct points; remap the
    # unique ids into first-encounter order to keep locality.
    _, first_index, inverse = np.unique(
        keys, axis=0, return_index=True, return_inverse=True
    )
    order = np.argsort(first_index, kind="stable")
    rank_of_unique = np.empty_like(order)
    rank_of_unique[order] = np.arange(order.size)
    ibool = rank_of_unique[inverse].reshape(xyz.shape[:-1])
    return ibool, int(order.size)


def renumber_first_touch(ibool: np.ndarray, nglob: int) -> tuple[np.ndarray, np.ndarray]:
    """Renumber global points in first-touch order of the element loop.

    This is the point-renumbering optimisation of [Komatitsch et al. 2008]
    that the paper credits with having already removed most L2 misses.
    Returns ``(new_ibool, permutation)`` where
    ``permutation[old_global] = new_global``.
    """
    flat = ibool.ravel()
    perm = np.full(nglob, -1, dtype=np.int64)
    next_id = 0
    for g in flat:
        if perm[g] < 0:
            perm[g] = next_id
            next_id += 1
    if next_id != nglob:
        raise ValueError(
            f"ibool references {next_id} globals but nglob={nglob}"
        )
    return perm[ibool], perm


def apply_global_permutation(
    ibool: np.ndarray, perm: np.ndarray, *arrays: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Apply a global renumbering to ibool and any global-length arrays.

    ``perm[old] = new``.  Global arrays are reordered so that
    ``new_array[perm[g]] = old_array[g]``.
    """
    perm = np.asarray(perm)
    new_ibool = perm[ibool]
    out: list[np.ndarray] = [new_ibool]
    for arr in arrays:
        if arr.shape[0] != perm.size:
            raise ValueError(
                f"global array of length {arr.shape[0]} does not match "
                f"permutation of size {perm.size}"
            )
        new_arr = np.empty_like(arr)
        new_arr[perm] = arr
        out.append(new_arr)
    return tuple(out)


def average_global_stride(ibool: np.ndarray) -> float:
    """Mean |delta global index| between consecutive accesses of the
    element loop — the locality metric the Cuthill-McKee sorting of
    Section 4.2 minimises.  Lower is more cache-friendly."""
    flat = ibool.ravel().astype(np.int64)
    if flat.size < 2:
        return 0.0
    return float(np.mean(np.abs(np.diff(flat))))
