"""Mesh quality and resolution diagnostics.

Computes the two numbers that control any SEM run (Section 3 of the
paper): the *stable time step* from the Courant condition (smallest GLL
point spacing over the local P velocity) and the *shortest resolved
period* from the 5-points-per-wavelength rule on the S (or P in the fluid)
velocity.  Also provides element-shape statistics and the slice load
balance metric used by the central-cube ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .element import RegionMesh

__all__ = [
    "MeshResolution",
    "estimate_time_step",
    "estimate_resolution",
    "element_size_range",
    "load_balance_imbalance",
]


@dataclass(frozen=True)
class MeshResolution:
    """Summary of a mesh's numerical limits."""

    dt_stable: float
    shortest_period: float
    min_gll_spacing: float
    max_element_size: float


def _min_gll_spacing_per_element(xyz: np.ndarray) -> np.ndarray:
    """Minimum distance between adjacent GLL points, per element.

    Adjacent along each of the three local axes — the spacing that enters
    the Courant condition.
    """
    d_i = np.linalg.norm(np.diff(xyz, axis=1), axis=-1).min(axis=(1, 2, 3))
    d_j = np.linalg.norm(np.diff(xyz, axis=2), axis=-1).min(axis=(1, 2, 3))
    d_k = np.linalg.norm(np.diff(xyz, axis=3), axis=-1).min(axis=(1, 2, 3))
    return np.minimum(np.minimum(d_i, d_j), d_k)


def _max_gll_spacing_per_element(xyz: np.ndarray) -> np.ndarray:
    d_i = np.linalg.norm(np.diff(xyz, axis=1), axis=-1).max(axis=(1, 2, 3))
    d_j = np.linalg.norm(np.diff(xyz, axis=2), axis=-1).max(axis=(1, 2, 3))
    d_k = np.linalg.norm(np.diff(xyz, axis=3), axis=-1).max(axis=(1, 2, 3))
    return np.maximum(np.maximum(d_i, d_j), d_k)


def estimate_time_step(
    meshes: list[RegionMesh], courant: float = 0.4, length_scale: float = 1.0
) -> float:
    """Stable explicit time step: ``courant * min(dx_gll / vp)``.

    ``length_scale`` converts mesh coordinates to metres (mesh is in km,
    so pass 1000.0 for a dt in seconds).
    """
    if not meshes:
        raise ValueError("need at least one region mesh")
    dt = np.inf
    for mesh in meshes:
        if not mesh.has_materials:
            raise ValueError("materials must be assigned before dt estimation")
        vp = np.sqrt((mesh.kappa + (4.0 / 3.0) * mesh.mu) / mesh.rho)
        dx = _min_gll_spacing_per_element(mesh.xyz) * length_scale
        vp_max = vp.reshape(mesh.nspec, -1).max(axis=1)
        dt = min(dt, float(np.min(dx / vp_max)))
    return courant * dt


def estimate_resolution(
    meshes: list[RegionMesh],
    points_per_wavelength: float = 5.0,
    length_scale: float = 1.0,
) -> float:
    """Shortest accurately-propagated period (s) of the mesh.

    Per element, the resolved wavelength is
    ``avg_gll_spacing * points_per_wavelength`` and the limiting speed is
    the slowest non-zero wave speed (S in solids, P in the fluid).
    """
    worst = 0.0
    for mesh in meshes:
        if not mesh.has_materials:
            raise ValueError("materials must be assigned before resolution estimation")
        vs = np.sqrt(mesh.mu / mesh.rho)
        vp = np.sqrt((mesh.kappa + (4.0 / 3.0) * mesh.mu) / mesh.rho)
        v_lim = np.where(vs > 1.0, vs, vp).reshape(mesh.nspec, -1).min(axis=1)
        dx_max = _max_gll_spacing_per_element(mesh.xyz) * length_scale
        period = points_per_wavelength * dx_max / v_lim
        worst = max(worst, float(np.max(period)))
    return worst


def element_size_range(mesh: RegionMesh) -> tuple[float, float]:
    """(min, max) GLL spacing over all elements — shape-spread diagnostic."""
    return (
        float(_min_gll_spacing_per_element(mesh.xyz).min()),
        float(_max_gll_spacing_per_element(mesh.xyz).max()),
    )


def load_balance_imbalance(elements_per_rank: np.ndarray) -> float:
    """Load imbalance = max/mean - 1 over per-rank element counts.

    Zero means perfect balance.  The paper's mesh design achieves values
    near zero except for the central-cube ranks, which is why the cube was
    cut in two.
    """
    counts = np.asarray(elements_per_rank, dtype=np.float64)
    if counts.size == 0 or np.all(counts == 0):
        raise ValueError("element counts must be non-empty and non-zero")
    return float(counts.max() / counts.mean() - 1.0)
