"""Radial discretisation of the three meshed regions of the globe.

The mesher stacks spherical element layers between the region boundaries
(surface, Moho, ..., CMB, ICB, central-cube top), honouring the first-order
PREM discontinuities so no element straddles a material jump — the property
that lets the SEM capture reflected/converted phases sharply.
"""

from __future__ import annotations

import numpy as np

from ..config import constants
from ..model.prem import PREM, RegionCode

__all__ = [
    "region_bounds_km",
    "radial_breaks_km",
    "radial_breaks_between_km",
    "CENTRAL_CUBE_RADIUS_FRACTION",
]

#: Top of the central cube as a fraction of the ICB radius (SPECFEM's
#: inflated central cube sits around half the inner-core radius).
CENTRAL_CUBE_RADIUS_FRACTION = 0.5


def central_cube_radius_km() -> float:
    """Nominal radius of the inflated central cube (km)."""
    return CENTRAL_CUBE_RADIUS_FRACTION * constants.R_ICB_KM


def region_bounds_km(region: int) -> tuple[float, float]:
    """(bottom, top) radii of a meshed region in km.

    The inner-core *shell* region stops at the central-cube surface; the
    ball below it is meshed by :mod:`repro.mesh.central_cube`.
    """
    if region == RegionCode.CRUST_MANTLE:
        return constants.R_CMB_KM, constants.R_EARTH_KM
    if region == RegionCode.OUTER_CORE:
        return constants.R_ICB_KM, constants.R_CMB_KM
    if region == RegionCode.INNER_CORE:
        return central_cube_radius_km(), constants.R_ICB_KM
    raise ValueError(f"unknown region code {region}")


def radial_breaks_km(region: int, n_layers: int) -> np.ndarray:
    """Element-layer boundary radii for a region, ascending, length n_layers+1.

    Internal first-order discontinuities of PREM are always honoured when
    the layer budget allows; remaining layers are distributed to the
    thickest sub-intervals, keeping element aspect ratios reasonable.  If
    ``n_layers`` is smaller than the number of internal discontinuities,
    the deepest/most significant ones are kept (ordered by the size of the
    density jump across them).
    """
    bottom, top = region_bounds_km(region)
    return radial_breaks_between_km(bottom, top, n_layers)


def radial_breaks_km_uniform(region: int, n_layers: int) -> np.ndarray:
    """Uniform layers between the region bounds (no discontinuity snapping)."""
    bottom, top = region_bounds_km(region)
    return radial_breaks_between_km(
        bottom, top, n_layers, honor_discontinuities=False
    )


def radial_breaks_between_km(
    bottom: float, top: float, n_layers: int, honor_discontinuities: bool = True
) -> np.ndarray:
    """Like :func:`radial_breaks_km` but for arbitrary radius bounds
    (used by the regional single-chunk mesher).  With
    ``honor_discontinuities=False`` the layers are simply uniform —
    appropriate for homogeneous material models."""
    if n_layers < 1:
        raise ValueError(f"need at least 1 layer, got {n_layers}")
    if not 0.0 <= bottom < top:
        raise ValueError(f"invalid bounds [{bottom}, {top}]")
    if not honor_discontinuities:
        return np.linspace(bottom, top, n_layers + 1)
    internal = [
        r for r in PREM.discontinuities_km() if bottom + 1e-9 < r < top - 1e-9
    ]
    if len(internal) > n_layers - 1:
        # Keep the discontinuities with the largest density jumps.
        jumps = [
            abs(PREM.density(r, side="above") - PREM.density(r, side="below"))
            for r in internal
        ]
        order = np.argsort(jumps)[::-1][: n_layers - 1]
        internal = sorted(internal[i] for i in order)
    breaks = [bottom, *internal, top]
    # Split the thickest interval until we have n_layers of them.
    while len(breaks) - 1 < n_layers:
        widths = np.diff(breaks)
        i = int(np.argmax(widths))
        breaks.insert(i + 1, 0.5 * (breaks[i] + breaks[i + 1]))
        breaks.sort()
    return np.asarray(breaks, dtype=np.float64)
