"""Earthquake sources: moment tensors, point forces, source-time functions.

The earthquake is the point source of Equation (3) of the paper: a moment
tensor M at location x_s with source-time function S(t).  In the weak form
the moment-tensor term integrates to ``M : grad(w)(x_s)`` — evaluated here
by differentiating the Lagrange basis of the host element at the source's
reference coordinates, exactly as SPECFEM precomputes its ``sourcearray``.

Event batching: sources stay strictly per-event objects.  A batched run
(see :mod:`repro.solver.fields`) carries one list of sources per event;
the solver precomputes each event's ``sourcearray`` with the functions
here, unchanged, and injects event ``b``'s amplitudes only into force
slice ``force[b]`` — so the source term of a batched event is the exact
unbatched computation, bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..gll.lagrange import lagrange_basis, lagrange_basis_derivative
from ..gll.quadrature import gll_points_and_weights

__all__ = [
    "gaussian_stf",
    "ricker_stf",
    "step_stf",
    "MomentTensorSource",
    "PointForceSource",
    "moment_tensor_source_array",
    "point_force_source_array",
]


def gaussian_stf(half_duration: float) -> Callable[[float], float]:
    """Normalised Gaussian pulse (SPECFEM's default quasi-Dirac)."""
    if half_duration <= 0:
        raise ValueError("half_duration must be positive")
    a = 1.0 / half_duration

    def stf(t: float) -> float:
        return a / math.sqrt(math.pi) * math.exp(-((a * t) ** 2))

    return stf


def ricker_stf(dominant_frequency: float) -> Callable[[float], float]:
    """Ricker (Mexican-hat) wavelet with the given dominant frequency."""
    if dominant_frequency <= 0:
        raise ValueError("dominant_frequency must be positive")
    a = (math.pi * dominant_frequency) ** 2

    def stf(t: float) -> float:
        return (1.0 - 2.0 * a * t * t) * math.exp(-a * t * t)

    return stf


def step_stf(half_duration: float) -> Callable[[float], float]:
    """Smooth step (error function): the far-field displacement source."""
    if half_duration <= 0:
        raise ValueError("half_duration must be positive")

    def stf(t: float) -> float:
        return 0.5 * (1.0 + math.erf(t / half_duration))

    return stf


@dataclass(frozen=True)
class MomentTensorSource:
    """A CMT-style point source.

    ``moment`` is the symmetric 3x3 moment tensor in N m (Cartesian frame);
    ``position`` the Cartesian source location (same units as the mesh);
    ``time_shift`` delays the source-time function.
    """

    position: tuple[float, float, float]
    moment: np.ndarray
    stf: Callable[[float], float]
    time_shift: float = 0.0

    def __post_init__(self) -> None:
        m = np.asarray(self.moment, dtype=np.float64)
        if m.shape != (3, 3):
            raise ValueError(f"moment tensor must be 3x3, got {m.shape}")
        if not np.allclose(m, m.T, atol=1e-6 * max(1.0, float(np.abs(m).max()))):
            raise ValueError("moment tensor must be symmetric")

    def amplitude(self, t: float) -> float:
        return self.stf(t - self.time_shift)

    @property
    def scalar_moment(self) -> float:
        """M0 = ||M||_F / sqrt(2), the usual scalar moment."""
        m = np.asarray(self.moment)
        return float(np.linalg.norm(m) / np.sqrt(2.0))


@dataclass(frozen=True)
class PointForceSource:
    """A simple directed point force (useful for validation problems)."""

    position: tuple[float, float, float]
    force: tuple[float, float, float]
    stf: Callable[[float], float]
    time_shift: float = 0.0

    def amplitude(self, t: float) -> float:
        return self.stf(t - self.time_shift)


def moment_tensor_source_array(
    moment: np.ndarray,
    element_xyz: np.ndarray,
    inv_jacobian_at_source: np.ndarray,
    xi: float,
    eta: float,
    gamma: float,
) -> np.ndarray:
    """Precompute the elemental source array for a moment tensor.

    The weak-form source term is ``f_w = M : grad(w)(x_s)``; for the test
    function attached to local node (i, j, k) and component c it equals
    ``sum_d M[c, d] * d(l_i l_j l_k)/dx_d (x_s)``.

    Parameters
    ----------
    moment : (3, 3) tensor
    element_xyz : (n, n, n, 3) host element GLL coordinates (for n only)
    inv_jacobian_at_source : (3, 3) d(xi_l)/d(x_c) at the source point
    xi, eta, gamma : source reference coordinates in the host element

    Returns
    -------
    (n, n, n, 3) array to be scaled by S(t) and scatter-added into accel.
    """
    n = element_xyz.shape[0]
    nodes, _ = gll_points_and_weights(n)
    hx = lagrange_basis(nodes, xi)
    hy = lagrange_basis(nodes, eta)
    hz = lagrange_basis(nodes, gamma)
    dhx = lagrange_basis_derivative(nodes, xi)
    dhy = lagrange_basis_derivative(nodes, eta)
    dhz = lagrange_basis_derivative(nodes, gamma)
    # d(basis_ijk)/d(xi_l): tensor products.
    dref = np.stack(
        [
            dhx[:, None, None] * hy[None, :, None] * hz[None, None, :],
            hx[:, None, None] * dhy[None, :, None] * hz[None, None, :],
            hx[:, None, None] * hy[None, :, None] * dhz[None, None, :],
        ],
        axis=-1,
    )  # (n, n, n, l)
    # d(basis)/dx_d = sum_l dref_l * d(xi_l)/dx_d
    dphys = np.einsum("ijkl,ld->ijkd", dref, inv_jacobian_at_source)
    moment = np.asarray(moment, dtype=np.float64)
    return np.einsum("cd,ijkd->ijkc", moment, dphys)


def point_force_source_array(
    force: np.ndarray,
    ngll: int,
    xi: float,
    eta: float,
    gamma: float,
) -> np.ndarray:
    """Elemental source array for a point force: ``F * basis(x_s)``."""
    nodes, _ = gll_points_and_weights(ngll)
    hx = lagrange_basis(nodes, xi)
    hy = lagrange_basis(nodes, eta)
    hz = lagrange_basis(nodes, gamma)
    basis = hx[:, None, None] * hy[None, :, None] * hz[None, None, :]
    return basis[..., None] * np.asarray(force, dtype=np.float64)
