"""Attenuation: standard-linear-solid memory variables in the time loop.

The paper reports that enabling attenuation multiplies runtime by ~1.8x
with an "almost imperceptible" drop in the flops rate — the cost is an
extra strain evaluation plus cheap dense updates of the per-point memory
variables.  This module implements exactly that structure:

* each solid region keeps ``n_sls`` memory tensors ``zeta_j`` tracking the
  deviatoric strain through first-order relaxation
  ``zeta_j' = (y_j eps_dev - zeta_j) / tau_j``;
* the stress passed to the force kernel is corrected by
  ``-2 mu sum_j zeta_j`` (the anelastic stress relaxation);
* updates use the exact exponential integrator with the end-of-step strain
  (first-order accurate, unconditionally stable).

Only shear (Q_mu) attenuation is modelled; PREM's Q_kappa is 57823 in the
mantle and its effect over the simulated windows is negligible — the same
default choice as SPECFEM3D_GLOBE's standard configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import constants
from ..model.attenuation import SLSFit, fit_constant_q

__all__ = ["AttenuationState", "build_attenuation"]


@dataclass
class AttenuationState:
    """Memory variables and coefficients for one solid region.

    Attributes
    ----------
    fits : per-Q-bin SLS fits (elements are binned by their Q_mu value)
    bin_of_element : (nspec,) index into ``fits`` per element
    zeta : (n_sls, nspec, n, n, n, 3, 3) memory tensors (deviatoric), or
        (n_sls, B, nspec, n, n, n, 3, 3) for an event-batched solver
        (``build_attenuation(..., batch=B)``); the update methods dispatch
        on ``zeta.ndim`` and the relaxation is elementwise, so each event
        slice evolves bit-identically to an unbatched state
    alpha, weight : (n_sls, nspec, 1, 1, 1) update coefficients per element
        (shared across events — the mesh, dt and Q model are common)
    """

    fits: list[SLSFit]
    bin_of_element: np.ndarray
    zeta: np.ndarray
    alpha: np.ndarray
    weight: np.ndarray
    y: np.ndarray  # (n_sls, nspec, 1, 1, 1) anelastic coefficients

    @property
    def n_sls(self) -> int:
        return self.zeta.shape[0]

    def update(self, strain: np.ndarray) -> None:
        """Advance memory variables one step with the current strain.

        ``strain`` is (nspec, n, n, n, 3, 3) — or (B, nspec, n, n, n,
        3, 3) for a batched state; only its deviatoric part drives the
        memory variables.
        """
        dev = strain.copy()
        trace_third = np.trace(strain, axis1=-2, axis2=-1) / 3.0
        idx = np.arange(3)
        dev[..., idx, idx] -= trace_third[..., None]
        # zeta <- alpha zeta + (1 - alpha) y dev   (exponential relaxation)
        if self.zeta.ndim == 8:
            self.zeta *= self.alpha[:, None, ..., None, None]
            self.zeta += (
                (self.weight * self.y)[:, None, ..., None, None]
                * dev[None, ...]
            )
            return
        self.zeta *= self.alpha[..., None, None]
        self.zeta += (
            (self.weight * self.y)[..., None, None] * dev[None, ...]
        )

    def stress_correction(self, mu: np.ndarray) -> np.ndarray:
        """Anelastic stress to subtract: 2 mu sum_j zeta_j."""
        return 2.0 * mu[..., None, None] * self.zeta.sum(axis=0)

    def update_subset(self, strain: np.ndarray, elements: np.ndarray) -> None:
        """:meth:`update` restricted to an element subset.

        The overlapped time loop advances boundary and interior elements
        in two passes; the relaxation is elementwise, so updating the two
        subsets separately is bit-identical to one full update — provided
        each element appears in exactly one subset per step.
        """
        dev = strain.copy()
        trace_third = np.trace(strain, axis1=-2, axis2=-1) / 3.0
        idx = np.arange(3)
        dev[..., idx, idx] -= trace_third[..., None]
        if self.zeta.ndim == 8:
            zeta = self.zeta[:, :, elements]
            zeta *= self.alpha[:, None, elements][..., None, None]
            zeta += (
                (self.weight[:, None, elements] * self.y[:, None, elements])[
                    ..., None, None
                ]
                * dev[None, ...]
            )
            self.zeta[:, :, elements] = zeta
            return
        zeta = self.zeta[:, elements]
        zeta *= self.alpha[:, elements][..., None, None]
        zeta += (
            (self.weight[:, elements] * self.y[:, elements])[..., None, None]
            * dev[None, ...]
        )
        self.zeta[:, elements] = zeta

    def stress_correction_subset(
        self, mu: np.ndarray, elements: np.ndarray
    ) -> np.ndarray:
        """:meth:`stress_correction` for an element subset (``mu`` already
        sliced to the subset)."""
        if self.zeta.ndim == 8:
            return (
                2.0 * mu[..., None, None]
                * self.zeta[:, :, elements].sum(axis=0)
            )
        return 2.0 * mu[..., None, None] * self.zeta[:, elements].sum(axis=0)


def build_attenuation(
    q_mu: np.ndarray,
    dt: float,
    f_min: float,
    f_max: float,
    n_sls: int = constants.N_SLS,
    n_q_bins: int = 6,
    batch: int | None = None,
) -> AttenuationState:
    """Build the attenuation state for a solid region.

    ``q_mu`` is the per-GLL-point quality factor from the mesher; elements
    are binned by their median Q (PREM has a handful of distinct Q values,
    so binning is exact in practice) and one SLS fit is shared per bin.
    With ``batch=B`` the memory tensors gain a per-event axis
    (n_sls, B, nspec, n, n, n, 3, 3); the coefficients stay shared.
    """
    if q_mu.ndim != 4:
        raise ValueError(f"q_mu must be (nspec, n, n, n), got {q_mu.shape}")
    nspec, n = q_mu.shape[0], q_mu.shape[1]
    q_elem = np.median(q_mu.reshape(nspec, -1), axis=1)
    # Bin by distinct Q values (capped at n_q_bins via quantiles if needed).
    distinct = np.unique(q_elem)
    if distinct.size > n_q_bins:
        edges = np.quantile(q_elem, np.linspace(0, 1, n_q_bins + 1))
        bin_of = np.clip(np.searchsorted(edges, q_elem) - 1, 0, n_q_bins - 1)
        q_rep = np.array(
            [np.median(q_elem[bin_of == b]) if np.any(bin_of == b) else edges[b]
             for b in range(n_q_bins)]
        )
    else:
        q_rep = distinct
        bin_of = np.searchsorted(distinct, q_elem)
    fits = [fit_constant_q(float(q), f_min, f_max, n_sls=n_sls) for q in q_rep]
    alpha = np.empty((n_sls, nspec, 1, 1, 1))
    y = np.empty_like(alpha)
    for b, fit in enumerate(fits):
        mask = bin_of == b
        a = np.exp(-dt / fit.tau_sigma)
        for j in range(n_sls):
            alpha[j, mask] = a[j]
            y[j, mask] = fit.y[j]
    weight = 1.0 - alpha
    if batch is None:
        zeta = np.zeros((n_sls, nspec, n, n, n, 3, 3))
    else:
        zeta = np.zeros((n_sls, batch, nspec, n, n, n, 3, 3))
    return AttenuationState(
        fits=fits,
        bin_of_element=bin_of,
        zeta=zeta,
        alpha=alpha,
        weight=weight,
        y=y,
    )
