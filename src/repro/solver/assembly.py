"""Global assembly: gather/scatter through ``ibool`` and mass matrices.

The assembly stage — summing elemental contributions at shared global
points (Figure 3 of the paper) — is the step that becomes MPI communication
at slice boundaries.  Within a slice (or the merged serial mesh) it is a
scatter-add, implemented with ``np.bincount`` per component, which is far
faster than ``np.add.at`` for the SEM's many-repeats index pattern.
"""

from __future__ import annotations

import numpy as np

from ..kernels.geometry import ElementGeometry

__all__ = [
    "gather",
    "gather_batched",
    "scatter_add",
    "scatter_add_batched",
    "assemble_mass_matrix",
    "assemble_scalar_mass_matrix",
]


def gather(global_field: np.ndarray, ibool: np.ndarray) -> np.ndarray:
    """Global -> local: (nglob[, c]) -> (nspec, n, n, n[, c])."""
    return global_field[ibool]


def gather_batched(global_field: np.ndarray, ibool: np.ndarray) -> np.ndarray:
    """Batched global -> local: (B, nglob[, c]) -> (B, nspec, n, n, n[, c]).

    One fancy-indexing pass gathers all B events; each ``out[b]`` equals
    ``gather(global_field[b], ibool)`` exactly (pure copies, no sums).
    """
    return global_field[:, ibool]


def scatter_add(
    local_field: np.ndarray, ibool: np.ndarray, nglob: int
) -> np.ndarray:
    """Local -> global sum: the assembly of the paper's Section 2.4.

    ``local_field`` is (nspec, n, n, n) or (nspec, n, n, n, ncomp);
    returns (nglob,) or (nglob, ncomp).
    """
    idx = ibool.ravel()
    if local_field.ndim == ibool.ndim:
        return np.bincount(idx, weights=local_field.ravel(), minlength=nglob)
    ncomp = local_field.shape[-1]
    out = np.empty((nglob, ncomp))
    flat = local_field.reshape(-1, ncomp)
    for c in range(ncomp):
        out[:, c] = np.bincount(idx, weights=flat[:, c], minlength=nglob)
    return out


def scatter_add_batched(
    local_field: np.ndarray, ibool: np.ndarray, nglob: int
) -> np.ndarray:
    """Batched local -> global sum, bit-identical per event slice.

    ``local_field`` is (B, nspec, n, n, n) or (B, nspec, n, n, n, ncomp);
    returns (B, nglob) or (B, nglob, ncomp).  Each event runs the same
    ``np.bincount`` calls as :func:`scatter_add`, so ``out[b]`` matches
    the unbatched result bit-for-bit (identical FP summation order).
    """
    idx = ibool.ravel()
    nbatch = local_field.shape[0]
    if local_field.ndim == ibool.ndim + 1:
        out = np.empty((nbatch, nglob))
        for b in range(nbatch):
            out[b] = np.bincount(
                idx, weights=local_field[b].ravel(), minlength=nglob
            )
        return out
    ncomp = local_field.shape[-1]
    out = np.empty((nbatch, nglob, ncomp))
    flat = local_field.reshape(nbatch, -1, ncomp)
    for b in range(nbatch):
        for c in range(ncomp):
            out[b, :, c] = np.bincount(
                idx, weights=flat[b, :, c], minlength=nglob
            )
    return out


def assemble_mass_matrix(
    rho: np.ndarray,
    geom: ElementGeometry,
    ibool: np.ndarray,
    nglob: int,
) -> np.ndarray:
    """Diagonal solid mass matrix: M_g = sum over elements of rho J w.

    Diagonal *by construction* (GLL collocation), the property that lets
    the SEM march explicitly with no linear solver (Section 2.4).
    """
    local = rho * geom.jweight
    mass = scatter_add(local, ibool, nglob)
    if np.any(mass <= 0.0):
        raise ValueError("mass matrix has non-positive entries")
    return mass


def assemble_scalar_mass_matrix(
    kappa_inv: np.ndarray,
    geom: ElementGeometry,
    ibool: np.ndarray,
    nglob: int,
) -> np.ndarray:
    """Fluid (potential) mass matrix: M_g = sum of (1/kappa) J w."""
    local = kappa_inv * geom.jweight
    mass = scatter_add(local, ibool, nglob)
    if np.any(mass <= 0.0):
        raise ValueError("fluid mass matrix has non-positive entries")
    return mass
