"""Ocean load approximation on the free surface.

SPECFEM3D_GLOBE does not mesh the 3-km PREM ocean; instead the water
column's inertia is added as an equivalent surface load: the normal
component of the surface acceleration feels an extra mass
``rho_water * h_water`` per unit area.  After the solid update the
correction is

    a <- a - (m_w / (M + m_w)) (a . n) n        per free-surface point,

where ``m_w`` is the assembled ocean mass at that point and M the solid
mass matrix entry — equivalent to solving with the ocean-augmented mass on
the normal component only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import constants
from ..mesh.interfaces import FACE_SLICES

__all__ = ["OceanLoad", "build_ocean_load"]


@dataclass
class OceanLoad:
    """Assembled ocean-load data on the free surface of the crust/mantle."""

    point_ids: np.ndarray  # (npoints,) global indices (unique)
    normals: np.ndarray  # (npoints, 3) outward unit normals
    ocean_mass: np.ndarray  # (npoints,) rho_w * h * assembled area

    def apply(self, accel: np.ndarray, mass: np.ndarray) -> None:
        """Correct the normal acceleration component in place.

        Works on both layouts: ``accel`` (nglob, 3) or (B, nglob, 3);
        the correction is pointwise per event, so batched slices match
        unbatched runs bit-for-bit.
        """
        factor = self.ocean_mass / (mass[self.point_ids] + self.ocean_mass)
        if accel.ndim == 3:
            a = accel[:, self.point_ids]
            a_n = np.einsum("bpc,pc->bp", a, self.normals)
            accel[:, self.point_ids] = (
                a - (factor * a_n)[..., None] * self.normals
            )
            return
        a = accel[self.point_ids]
        a_n = np.einsum("pc,pc->p", a, self.normals)
        accel[self.point_ids] = a - (factor * a_n)[:, None] * self.normals


def build_ocean_load(
    surface_faces: list[tuple[int, int]],
    xyz: np.ndarray,
    ibool: np.ndarray,
    weights_2d: np.ndarray,
    water_depth_m: float = 3000.0,
    rho_water: float = constants.RHO_OCEAN,
    length_scale: float = 1000.0,
) -> OceanLoad:
    """Assemble the ocean load over the free-surface faces.

    ``length_scale`` converts mesh coordinates (km) to metres so the
    assembled mass is in kg.  A uniform water depth stands in for real
    bathymetry (the code path — per-point loads and normal projection — is
    identical).
    """
    from ..mesh.interfaces import face_area_weights

    if water_depth_m < 0:
        raise ValueError("water depth must be non-negative")
    nglob = int(ibool.max()) + 1
    mass_at = np.zeros(nglob)
    normal_at = np.zeros((nglob, 3))
    for ispec, face_id in surface_faces:
        pts = xyz[(ispec, *FACE_SLICES[face_id])]
        ids = ibool[(ispec, *FACE_SLICES[face_id])]
        area_w = face_area_weights(pts, weights_2d) * length_scale**2
        r = np.linalg.norm(pts, axis=-1, keepdims=True)
        normals = pts / r
        np.add.at(mass_at, ids.ravel(), (rho_water * water_depth_m * area_w).ravel())
        np.add.at(normal_at, ids.ravel(), normals.reshape(-1, 3))
    loaded = np.flatnonzero(mass_at > 0)
    normals = normal_at[loaded]
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    return OceanLoad(
        point_ids=loaded,
        normals=normals,
        ocean_mass=mass_at[loaded],
    )
