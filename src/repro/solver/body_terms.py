"""Pointwise body-force terms: rotation (Coriolis) and self-gravitation.

SPECFEM3D_GLOBE's full treatment couples rotation into the fluid-core
potential equations and integrates the linearised gravity terms in the
stiffness routines.  This reproduction applies both as mass-weighted
pointwise (collocated strong-form) terms in the *solid* regions:

* rotation:  ``f = -2 rho (Omega x v)``                 (Coriolis)
* gravity:   ``f = rho g(r) [ rhat (div s) - grad(s_r) ]``
  — a Cowling-approximation restoring force built from the same spectral
  gradients the force kernel uses.

Both are small corrections at the frequencies of interest; the point of
carrying them is to exercise the corresponding code paths and flop counts
(DESIGN.md documents the substitution).

Both terms are batch-transparent: with an event-batched local field
``(B, nspec, n, n, n, 3)`` (see :mod:`repro.solver.fields`) every
operation here is either elementwise or an ellipsis-broadcast einsum
over per-mesh data (rho, coordinates, g), so the batched result's event
slices are bit-identical to unbatched calls — no dispatch needed.
"""

from __future__ import annotations

import numpy as np

from ..gll.lagrange import GLLBasis
from ..kernels.elastic import _displacement_gradient_batched
from ..kernels.geometry import ElementGeometry

__all__ = ["coriolis_local_force", "gravity_local_force"]


def coriolis_local_force(
    veloc_local: np.ndarray,
    rho: np.ndarray,
    geom: ElementGeometry,
    omega_vector: np.ndarray,
) -> np.ndarray:
    """Mass-weighted Coriolis contribution: -2 rho (Omega x v) J w.

    ``veloc_local`` is (nspec, n, n, n, 3) — or (B, nspec, n, n, n, 3)
    batched; returns the same shape, ready to scatter-add into the
    assembled force vector.
    """
    omega = np.asarray(omega_vector, dtype=np.float64)
    if omega.shape != (3,):
        raise ValueError(f"omega must be a 3-vector, got {omega.shape}")
    coriolis = -2.0 * np.cross(np.broadcast_to(omega, veloc_local.shape), veloc_local)
    return coriolis * (rho * geom.jweight)[..., None]


def gravity_local_force(
    displ_local: np.ndarray,
    xyz: np.ndarray,
    rho: np.ndarray,
    g_of_point: np.ndarray,
    geom: ElementGeometry,
    basis: GLLBasis,
) -> np.ndarray:
    """Cowling-approximation gravity restoring force (see module docstring).

    Parameters
    ----------
    displ_local : (nspec, n, n, n, 3) displacement at GLL points, or
        (B, nspec, n, n, n, 3) for an event batch (result gains the axis)
    xyz : (nspec, n, n, n, 3) coordinates (for the radial direction)
    g_of_point : (nspec, n, n, n) gravitational acceleration magnitude
    """
    r = np.linalg.norm(xyz, axis=-1)
    r_safe = np.where(r > 0, r, 1.0)
    rhat = xyz / r_safe[..., None]
    grad = _displacement_gradient_batched(displ_local, geom, basis)
    div_s = np.trace(grad, axis1=-2, axis2=-1)
    # grad(s_r) ~ grad(s . rhat): use the gradient of the radial component
    # treating rhat as locally constant plus the curvature term (s_t / r):
    # d(s.rhat)/dx_d = rhat_c grad[c,d] + (s_d - s_r rhat_d) / r.
    s_r = np.einsum("...c,...c->...", displ_local, rhat)
    grad_sr = np.einsum("...c,...cd->...d", rhat, grad)
    grad_sr += (displ_local - s_r[..., None] * rhat) / r_safe[..., None]
    force = rhat * div_s[..., None] - grad_sr
    return force * (rho * g_of_point * geom.jweight)[..., None]
