"""Wavefield state containers for the solid and fluid regions.

Batch-aware array contract
--------------------------
Every field array carries an *optional leading event axis* so one
time-loop pass can advance a batch of B independent sources on the same
mesh (the campaign-throughput analogue of the paper's 4-wide SSE/Altivec
batching — amortize per-op overhead over a batch):

====================  =====================  =====================
array                 unbatched (B = None)   batched (B events)
====================  =====================  =====================
``SolidField.displ``  ``(nglob, 3)``         ``(B, nglob, 3)``
``SolidField.veloc``  ``(nglob, 3)``         ``(B, nglob, 3)``
``SolidField.accel``  ``(nglob, 3)``         ``(B, nglob, 3)``
``FluidField.chi``    ``(nglob,)``           ``(B, nglob)``
====================  =====================  =====================

(``chi_dot`` / ``chi_ddot`` mirror ``chi``.)  All arrays are float64,
C-contiguous, and allocated exactly once here by ``zeros`` — the solver,
kernels, and halo exchange mutate them in place and never reallocate
(rule R3).  ``batch=None`` preserves the historical unbatched layout
bit-for-bit; ``batch=B`` (including ``B=1``) prepends the event axis.
The two layouts are distinguished downstream purely by ``ndim``, never
by a side flag, so a batched array can be handed to any consumer that
dispatches on shape.

Per-event views (``event_view``) are numpy views, not copies: event
``b`` of a batched field aliases ``displ[b]`` etc., which is what makes
the bit-identity guarantee checkable — the batched update of event ``b``
touches exactly the same values, in the same floating-point summation
order, as an unbatched run of that event (see docs/batching.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SolidField", "FluidField"]


@dataclass
class SolidField:
    """Displacement / velocity / acceleration on a solid region's globals."""

    displ: np.ndarray
    veloc: np.ndarray
    accel: np.ndarray

    @classmethod
    def zeros(cls, nglob: int, batch: int | None = None) -> "SolidField":
        shape = (nglob, 3) if batch is None else (batch, nglob, 3)
        return cls(
            displ=np.zeros(shape),
            veloc=np.zeros(shape),
            accel=np.zeros(shape),
        )

    @property
    def batch(self) -> int | None:
        """Event-batch size, or None for the unbatched layout."""
        return None if self.displ.ndim == 2 else int(self.displ.shape[0])

    @property
    def nglob(self) -> int:
        return self.displ.shape[-2]

    def event_view(self, b: int) -> "SolidField":
        """Unbatched-layout *view* (no copy) of event ``b``."""
        if self.batch is None:
            raise ValueError("event_view on an unbatched SolidField")
        return SolidField(self.displ[b], self.veloc[b], self.accel[b])

    def kinetic_energy(self, mass: np.ndarray) -> float:
        """0.5 * v^T M v with the diagonal mass matrix (summed over events)."""
        return 0.5 * float(np.sum(mass[:, None] * self.veloc**2))


@dataclass
class FluidField:
    """Potential chi and its time derivatives on the fluid region's globals.

    The physical fluid displacement is ``(1/rho) grad(chi)`` and the
    pressure perturbation is ``-chi_ddot`` (Chaljub & Valette formulation).
    """

    chi: np.ndarray
    chi_dot: np.ndarray
    chi_ddot: np.ndarray

    @classmethod
    def zeros(cls, nglob: int, batch: int | None = None) -> "FluidField":
        shape = (nglob,) if batch is None else (batch, nglob)
        return cls(
            chi=np.zeros(shape),
            chi_dot=np.zeros(shape),
            chi_ddot=np.zeros(shape),
        )

    @property
    def batch(self) -> int | None:
        """Event-batch size, or None for the unbatched layout."""
        return None if self.chi.ndim == 1 else int(self.chi.shape[0])

    @property
    def nglob(self) -> int:
        return self.chi.shape[-1]

    def event_view(self, b: int) -> "FluidField":
        """Unbatched-layout *view* (no copy) of event ``b``."""
        if self.batch is None:
            raise ValueError("event_view on an unbatched FluidField")
        return FluidField(self.chi[b], self.chi_dot[b], self.chi_ddot[b])
