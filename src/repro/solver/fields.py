"""Wavefield state containers for the solid and fluid regions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SolidField", "FluidField"]


@dataclass
class SolidField:
    """Displacement / velocity / acceleration on a solid region's globals."""

    displ: np.ndarray
    veloc: np.ndarray
    accel: np.ndarray

    @classmethod
    def zeros(cls, nglob: int) -> "SolidField":
        return cls(
            displ=np.zeros((nglob, 3)),
            veloc=np.zeros((nglob, 3)),
            accel=np.zeros((nglob, 3)),
        )

    @property
    def nglob(self) -> int:
        return self.displ.shape[0]

    def kinetic_energy(self, mass: np.ndarray) -> float:
        """0.5 * v^T M v with the diagonal mass matrix."""
        return 0.5 * float(np.sum(mass[:, None] * self.veloc**2))


@dataclass
class FluidField:
    """Potential chi and its time derivatives on the fluid region's globals.

    The physical fluid displacement is ``(1/rho) grad(chi)`` and the
    pressure perturbation is ``-chi_ddot`` (Chaljub & Valette formulation).
    """

    chi: np.ndarray
    chi_dot: np.ndarray
    chi_ddot: np.ndarray

    @classmethod
    def zeros(cls, nglob: int) -> "FluidField":
        return cls(
            chi=np.zeros(nglob),
            chi_dot=np.zeros(nglob),
            chi_ddot=np.zeros(nglob),
        )

    @property
    def nglob(self) -> int:
        return self.chi.shape[0]
