"""Checkpoint / restart of solver state.

The paper's production runs take "about 1 week ... of dedicated 32K or
more processor supercomputer time" — far beyond any queue's wall limit, so
runs of that class live and die by checkpointing.  This module saves and
restores the complete dynamic state of a :class:`GlobalSolver` (fields of
every region, attenuation memory variables, step counter, and — since
format v2 — the partially-recorded seismogram buffers with their step
cursor) so a run split into segments is bit-identical to an uninterrupted
one *including its seismograms* — the property the tests verify.

Writes are crash-safe: the NPZ is written to a temporary file in the
target directory and atomically renamed into place, so a job killed
mid-checkpoint never leaves a truncated file that would block restart.
Unreadable or truncated checkpoints are rejected with
:class:`CheckpointError`.

Format v3 adds end-to-end integrity verification: every array is
fingerprinted with CRC32 at save time (:mod:`repro.chaos.integrity`) and
re-verified on load, so silent on-disk corruption — a flipped bit, a
partial overwrite the zip layer happens to accept — surfaces as the
typed :class:`CheckpointCorruptionError` instead of garbage state.  The
campaign's segmented executor treats that error as "fall back to the
last *verified* checkpoint"; the retry policy treats it as fail-fast
for the artifact (re-running the same load cannot fix the file).  v1/v2
checkpoints still load, with a warning that they carry no checksums.

Event-batched solvers (docs/batching.md) checkpoint naturally under the
same format: field and zeta arrays simply carry their leading event axis
and the shape checks enforce that a batched checkpoint restores into an
equally-batched solver.  Per-event state can be extracted after load via
``field.event_view(b)`` / ``receiver_set.event_receiver_set(b)``.
"""

from __future__ import annotations

import math
import os
import tempfile
import warnings
from pathlib import Path

import numpy as np

from ..chaos.integrity import (
    INTEGRITY_KEY,
    IntegrityError,
    checksum_payload,
    parse_checksum_payload,
    verify_checksums,
)

__all__ = [
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
    "read_verified_arrays",
]

_FORMAT_VERSION = 3

#: Format versions :func:`load_checkpoint` still understands.
_READABLE_VERSIONS = (1, 2, 3)


class CheckpointError(ValueError):
    """A checkpoint file is corrupt, truncated, or otherwise unreadable."""


class CheckpointCorruptionError(CheckpointError, IntegrityError):
    """A checkpoint failed integrity verification (corrupt on disk).

    Raised when the v3 CRC32 map does not match the loaded arrays, and
    for files the NPZ/zip layer itself rejects as damaged.  Typed so the
    campaign layer can fall back to the last *verified* checkpoint and
    the retry policy can fail fast instead of re-reading a bad file.
    """


def save_checkpoint(
    solver, path: str | Path, step: int, tracer=None, metrics=None
) -> Path:
    """Write the solver's dynamic state to a compressed NPZ file.

    The write is atomic: data goes to a temp file in the same directory
    which is then :func:`os.replace`-d over ``path``, so readers never see
    a partially-written checkpoint and a crash mid-write leaves any
    previous checkpoint at ``path`` intact.

    With a ``tracer``/``metrics`` pair the write is recorded as a
    ``checkpoint.save`` span (with a ``bytes`` counter) plus
    ``checkpoint.saves``/``io.checkpoint_bytes_written`` counters — the
    hot I/O path the campaign rollups account for.
    """
    from ..obs.tracer import maybe_tracer

    path = Path(path)
    with maybe_tracer(tracer).span("checkpoint.save", step=step) as span:
        out = _save_checkpoint_body(solver, path, step)
        nbytes = path.stat().st_size
        span.add(bytes=nbytes)
        if metrics is not None:
            metrics.counter("checkpoint.saves").add(1)
            metrics.counter("io.checkpoint_bytes_written").add(nbytes)
    return out


def _save_checkpoint_body(solver, path: Path, step: int) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "version": np.asarray(_FORMAT_VERSION),
        "step": np.asarray(int(step)),
        "dt": np.asarray(solver.dt),
        "solid_codes": np.asarray(sorted(solver.solid_codes)),
    }
    for code in solver.solid_codes:
        f = solver.solid[code]
        arrays[f"displ_{code}"] = f.displ
        arrays[f"veloc_{code}"] = f.veloc
        arrays[f"accel_{code}"] = f.accel
    if solver.fluid is not None:
        arrays["chi"] = solver.fluid.chi
        arrays["chi_dot"] = solver.fluid.chi_dot
        arrays["chi_ddot"] = solver.fluid.chi_ddot
    for code, atten in solver.attenuation.items():
        arrays[f"zeta_{code}"] = atten.zeta
    # v2: partially-recorded seismograms plus the recording cursor, so a
    # segmented run's seismograms match an uninterrupted run exactly.
    if solver.receiver_set is not None:
        rs = solver.receiver_set
        arrays["seis_data"] = rs.data
        arrays["seis_step"] = np.asarray(int(rs.step_cursor))
        arrays["seis_n_steps"] = np.asarray(int(rs.n_steps))
    # v3: CRC32 of every array, re-verified on load.
    arrays[INTEGRITY_KEY] = checksum_payload(arrays)

    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            # Passing an open file object stops numpy from appending
            # ``.npz`` to the temp name.
            np.savez_compressed(fh, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _read_arrays(path: Path) -> dict[str, np.ndarray]:
    """Load every array of the NPZ, rejecting corrupt/truncated files."""
    try:
        with np.load(path, allow_pickle=False) as f:
            # Force full decompression of every member: a file truncated
            # mid-write fails here instead of at first (lazy) access, and
            # a flipped bit trips the zip layer's own CRC right here.
            return {name: np.array(f[name]) for name in f.files}
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointCorruptionError(
            f"checkpoint {path} is corrupt or truncated: {exc}"
        ) from exc


def load_checkpoint(solver, path: str | Path, tracer=None, metrics=None) -> int:
    """Restore a solver's dynamic state; returns the checkpointed step.

    The solver must have been constructed with the identical mesh and
    parameters; shape mismatches are rejected loudly.  Format v1 files
    (fields only, no seismogram buffers) still load, with a warning that
    partially-recorded seismograms were not restored.

    With a ``tracer``/``metrics`` pair the read is recorded as a
    ``checkpoint.load`` span plus ``checkpoint.loads``/
    ``io.checkpoint_bytes_read`` counters.
    """
    from ..obs.tracer import maybe_tracer

    path = Path(path)
    with maybe_tracer(tracer).span("checkpoint.load") as span:
        nbytes = path.stat().st_size if path.exists() else 0
        span.add(bytes=nbytes)
        if metrics is not None:
            metrics.counter("checkpoint.loads").add(1)
            metrics.counter("io.checkpoint_bytes_read").add(nbytes)
        return _load_checkpoint_body(solver, path)


def read_verified_arrays(path: str | Path) -> dict[str, np.ndarray]:
    """Read a checkpoint's raw arrays with full integrity verification.

    The solver-independent half of :func:`load_checkpoint`: header and
    version checks plus the v3 CRC32 verification, without applying the
    state to any solver.  This is what shrink-and-redistribute recovery
    (:mod:`repro.resilience.remap`) uses to harvest a dead world's state
    before any new-world solver exists.
    """
    path = Path(path)
    f = _read_arrays(path)
    if "version" not in f or "step" not in f:
        raise CheckpointError(f"checkpoint {path} lacks the version/step header")
    version = int(f["version"])
    if version not in _READABLE_VERSIONS:
        raise ValueError(f"unsupported checkpoint version {version}")
    # -- Integrity verification (format v3) --------------------------------
    if version >= 3:
        if INTEGRITY_KEY not in f:
            raise CheckpointCorruptionError(
                f"checkpoint {path} is format v{version} but lacks its "
                f"integrity map"
            )
        try:
            verify_checksums(
                {k: v for k, v in f.items() if k != INTEGRITY_KEY},
                parse_checksum_payload(f[INTEGRITY_KEY]),
            )
        except IntegrityError as exc:
            raise CheckpointCorruptionError(
                f"checkpoint {path} failed integrity verification: {exc}"
            ) from exc
    else:
        warnings.warn(
            f"checkpoint {path} is format v{version} (no integrity "
            "checksums): on-disk corruption cannot be detected",
            stacklevel=2,
        )
    return f


def _load_checkpoint_body(solver, path: Path) -> int:
    f = read_verified_arrays(path)
    version = int(f["version"])
    saved_dt = float(f["dt"])
    # Relative comparison via math.isclose: tolerates the dt == 0 edge
    # (both zero compares equal; zero vs. non-zero is rejected) instead of
    # the old ``abs(diff) > 1e-12 * solver.dt`` which degenerated at 0.
    if not math.isclose(saved_dt, solver.dt, rel_tol=1e-12, abs_tol=0.0):
        raise ValueError(
            f"checkpoint dt {saved_dt} does not match solver dt {solver.dt}"
        )
    saved_codes = set(int(c) for c in f["solid_codes"])
    if saved_codes != set(solver.solid_codes):
        raise ValueError(
            f"checkpoint regions {saved_codes} do not match solver "
            f"regions {set(solver.solid_codes)}"
        )
    for code in solver.solid_codes:
        field = solver.solid[code]
        for name, target in (
            (f"displ_{code}", field.displ),
            (f"veloc_{code}", field.veloc),
            (f"accel_{code}", field.accel),
        ):
            if name not in f:
                raise CheckpointError(f"checkpoint lacks array {name}")
            data = f[name]
            if data.shape != target.shape:
                raise ValueError(
                    f"checkpoint array {name} has shape {data.shape}, "
                    f"solver expects {target.shape}"
                )
            target[:] = data
    if solver.fluid is not None:
        if "chi" not in f:
            raise ValueError("checkpoint lacks the fluid state")
        solver.fluid.chi[:] = f["chi"]
        solver.fluid.chi_dot[:] = f["chi_dot"]
        solver.fluid.chi_ddot[:] = f["chi_ddot"]
    for code, atten in solver.attenuation.items():
        name = f"zeta_{code}"
        if name not in f:
            raise ValueError(
                f"checkpoint lacks attenuation memory for region {code}"
            )
        atten.zeta[:] = f[name]
    # -- Seismogram buffers (format v2) ------------------------------------
    if "seis_data" in f:
        if solver.receiver_set is None:
            raise ValueError(
                "checkpoint carries seismogram buffers but the solver has "
                "no receivers; rebuild the solver with the same stations"
            )
        rs = solver.receiver_set
        data = f["seis_data"]
        # Batched buffers are (B, nrec, n_steps, 3); unbatched are
        # (nrec, n_steps, 3).  A batched checkpoint only restores into a
        # batched solver (and vice versa) — the ndim check below rejects
        # the mismatch as a shape error.
        batched = data.ndim == 4
        rec_axis, step_axis = (1, 2) if batched else (0, 1)
        if batched != (getattr(rs, "batch", None) is not None):
            raise ValueError(
                f"checkpoint seismogram buffer {data.shape} is "
                f"{'batched' if batched else 'unbatched'} but the solver's "
                f"receiver set is not; rebuild the solver to match"
            )
        if batched and data.shape[0] != rs.batch:
            raise ValueError(
                f"checkpoint seismogram buffer {data.shape} carries "
                f"{data.shape[0]} events, solver expects {rs.batch}"
            )
        if data.shape[rec_axis] != len(rs.receivers) or data.shape[-1] != 3:
            raise ValueError(
                f"checkpoint seismogram buffer {data.shape} does not match "
                f"the solver's {len(rs.receivers)} receivers"
            )
        # The restored run keeps the checkpointed recording horizon.
        # ``seis_n_steps`` was written since v2 but never read back, so
        # a truncated buffer silently passed as a shorter recording;
        # cross-check it against the buffer's actual step extent.
        if "seis_n_steps" in f:
            declared = int(f["seis_n_steps"])
            if declared != data.shape[step_axis]:
                raise ValueError(
                    f"checkpoint seismogram buffer carries "
                    f"{data.shape[step_axis]} steps but declares "
                    f"seis_n_steps={declared}; the file is inconsistent"
                )
        # The buffer is rebuilt at the saved length (the solver's
        # default n_steps need not match the campaign's total).
        if data.shape[step_axis] != rs.n_steps:
            if batched:
                from .receivers import BatchedReceiverSet

                rs = BatchedReceiverSet(
                    rs.receivers, rs.batch, data.shape[step_axis], rs.dt
                )
            else:
                from .receivers import ReceiverSet

                rs = ReceiverSet(rs.receivers, data.shape[step_axis], rs.dt)
            solver.receiver_set = rs
        rs.data[:] = data
        rs.step_cursor = int(f["seis_step"])
    elif version >= 2 and solver.receiver_set is not None:
        raise ValueError(
            "checkpoint has no seismogram buffers but the solver records "
            "receivers; the segmented seismograms would be wrong"
        )
    elif version == 1 and solver.receiver_set is not None:
        warnings.warn(
            f"checkpoint {path} is format v1 (fields only): partially-"
            "recorded seismogram buffers were not restored, so a resumed "
            "run's seismograms will restart from zero",
            stacklevel=2,
        )
    return int(f["step"])


class CheckpointManager:
    """Step-addressed checkpoint store with bounded retention.

    One directory holds one solver's (or one rank's) checkpoints, named
    ``step_<NNNNNNNN>.npz`` so the step is recoverable from a directory
    scan alone.  ``keep=K`` bounds disk for long campaigns: after every
    save, all but the newest K *active* checkpoints are pruned.

    Corruption interacts with retention through *quarantine*, not
    deletion: a checkpoint that fails verification during
    :meth:`restore_latest` is renamed aside (suffix
    ``.quarantined``) so it stops counting against ``keep`` and stops
    being a restore candidate, while the evidence survives for
    post-mortem.  Pruning only ever removes the *oldest* active files,
    so walking back past a corrupt newest checkpoint always finds the
    next-newest verified one if any exists — the prune-past-corruption
    property the unit tests pin down.
    """

    #: Active checkpoint filename pattern (quarantined files get an
    #: extra suffix and no longer match).
    FILE_PREFIX = "step_"
    FILE_SUFFIX = ".npz"
    QUARANTINE_SUFFIX = ".quarantined"

    def __init__(
        self,
        directory: str | Path,
        keep: int | None = None,
        tracer=None,
        metrics=None,
    ):
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1 (or None for all), got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.tracer = tracer
        self.metrics = metrics

    def path_of(self, step: int) -> Path:
        return self.directory / f"{self.FILE_PREFIX}{int(step):08d}{self.FILE_SUFFIX}"

    def steps(self) -> list[int]:
        """Steps with an active (non-quarantined) checkpoint, ascending."""
        if not self.directory.is_dir():
            return []
        out = []
        for p in self.directory.iterdir():
            name = p.name
            if not (
                name.startswith(self.FILE_PREFIX)
                and name.endswith(self.FILE_SUFFIX)
            ):
                continue
            digits = name[len(self.FILE_PREFIX):-len(self.FILE_SUFFIX)]
            if digits.isdigit():
                out.append(int(digits))
        return sorted(out)

    def save(self, solver, step: int) -> Path:
        """Checkpoint ``solver`` at ``step``, then apply retention."""
        path = save_checkpoint(
            solver, self.path_of(step), step,
            tracer=self.tracer, metrics=self.metrics,
        )
        self.prune()
        return path

    def load(self, solver, step: int) -> int:
        """Restore ``solver`` from the checkpoint at exactly ``step``."""
        path = self.path_of(step)
        if not path.exists():
            raise CheckpointError(
                f"no checkpoint for step {step} in {self.directory}"
            )
        loaded = load_checkpoint(
            solver, path, tracer=self.tracer, metrics=self.metrics
        )
        if loaded != int(step):
            raise CheckpointError(
                f"checkpoint {path} carries step {loaded}, expected {step}"
            )
        return loaded

    def arrays(self, step: int) -> dict[str, np.ndarray]:
        """Raw verified arrays of the checkpoint at ``step`` (no solver)."""
        return read_verified_arrays(self.path_of(step))

    def quarantine(self, step: int) -> Path | None:
        """Move the checkpoint at ``step`` aside (evidence, not a candidate)."""
        path = self.path_of(step)
        if not path.exists():
            return None
        target = path.with_name(path.name + self.QUARANTINE_SUFFIX)
        os.replace(path, target)
        if self.metrics is not None:
            self.metrics.counter("checkpoint.quarantined").add(1)
        return target

    def prune(self) -> list[int]:
        """Delete the oldest active checkpoints beyond ``keep``; returns
        the pruned steps."""
        if self.keep is None:
            return []
        active = self.steps()
        doomed = active[:-self.keep] if len(active) > self.keep else []
        for step in doomed:
            try:
                self.path_of(step).unlink()
            except OSError:
                pass
        if doomed and self.metrics is not None:
            self.metrics.counter("checkpoint.pruned").add(len(doomed))
        return doomed

    def restore_latest(self, solver, on_reject=None) -> int | None:
        """Restore from the newest verified checkpoint, walking back past
        corruption.

        Each checkpoint that fails to load is quarantined and reported
        through ``on_reject(path, exc)`` before the next-newest is
        tried.  Returns the restored step, or ``None`` when no loadable
        checkpoint exists (the caller restarts from scratch).
        """
        for step in reversed(self.steps()):
            path = self.path_of(step)
            try:
                return self.load(solver, step)
            # Only corruption/unreadability walks back; a shape or dt
            # mismatch (ValueError) means the *solver* is wrong for this
            # store and quarantining intact files would not help.
            except CheckpointError as exc:
                quarantined = self.quarantine(step)
                if on_reject is not None:
                    on_reject(quarantined or path, exc)
        return None
