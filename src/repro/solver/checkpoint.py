"""Checkpoint / restart of solver state.

The paper's production runs take "about 1 week ... of dedicated 32K or
more processor supercomputer time" — far beyond any queue's wall limit, so
runs of that class live and die by checkpointing.  This module saves and
restores the complete dynamic state of a :class:`GlobalSolver` (fields of
every region, attenuation memory variables, step counter) so a run split
into segments is bit-identical to an uninterrupted one — the property the
tests verify.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(solver, path: str | Path, step: int) -> Path:
    """Write the solver's dynamic state to a compressed NPZ file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "version": np.asarray(_FORMAT_VERSION),
        "step": np.asarray(int(step)),
        "dt": np.asarray(solver.dt),
        "solid_codes": np.asarray(sorted(solver.solid_codes)),
    }
    for code in solver.solid_codes:
        f = solver.solid[code]
        arrays[f"displ_{code}"] = f.displ
        arrays[f"veloc_{code}"] = f.veloc
        arrays[f"accel_{code}"] = f.accel
    if solver.fluid is not None:
        arrays["chi"] = solver.fluid.chi
        arrays["chi_dot"] = solver.fluid.chi_dot
        arrays["chi_ddot"] = solver.fluid.chi_ddot
    for code, atten in solver.attenuation.items():
        arrays[f"zeta_{code}"] = atten.zeta
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(solver, path: str | Path) -> int:
    """Restore a solver's dynamic state; returns the checkpointed step.

    The solver must have been constructed with the identical mesh and
    parameters; shape mismatches are rejected loudly.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as f:
        version = int(f["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        saved_dt = float(f["dt"])
        if abs(saved_dt - solver.dt) > 1e-12 * solver.dt:
            raise ValueError(
                f"checkpoint dt {saved_dt} does not match solver dt {solver.dt}"
            )
        saved_codes = set(int(c) for c in f["solid_codes"])
        if saved_codes != set(solver.solid_codes):
            raise ValueError(
                f"checkpoint regions {saved_codes} do not match solver "
                f"regions {set(solver.solid_codes)}"
            )
        for code in solver.solid_codes:
            field = solver.solid[code]
            for name, target in (
                (f"displ_{code}", field.displ),
                (f"veloc_{code}", field.veloc),
                (f"accel_{code}", field.accel),
            ):
                data = f[name]
                if data.shape != target.shape:
                    raise ValueError(
                        f"checkpoint array {name} has shape {data.shape}, "
                        f"solver expects {target.shape}"
                    )
                target[:] = data
        if solver.fluid is not None:
            if "chi" not in f:
                raise ValueError("checkpoint lacks the fluid state")
            solver.fluid.chi[:] = f["chi"]
            solver.fluid.chi_dot[:] = f["chi_dot"]
            solver.fluid.chi_ddot[:] = f["chi_ddot"]
        for code, atten in solver.attenuation.items():
            name = f"zeta_{code}"
            if name not in f:
                raise ValueError(
                    f"checkpoint lacks attenuation memory for region {code}"
                )
            atten.zeta[:] = f[name]
        return int(f["step"])
