"""Surface movie output — snapshots of the wavefield at the free surface.

SPECFEM3D_GLOBE's movie mode writes the surface wavefield every N steps
for visualisation (the famous global wave-propagation animations).  The
:class:`SurfaceMovieRecorder` hooks into the solver's per-step callback,
buffers the surface displacement, and writes a ParaView-ready VTK series.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..config import constants
from ..mesh.interfaces import external_faces, faces_at_radius

__all__ = ["SurfaceMovieRecorder"]


class SurfaceMovieRecorder:
    """Record the free-surface displacement every ``every`` steps.

    Usage::

        movie = SurfaceMovieRecorder(solver, every=10)
        solver.run(callbacks=[movie.on_step])
        movie.write_vtk_series("movie/")
    """

    def __init__(self, solver, every: int = 10):
        from ..model.prem import RegionCode

        if every < 1:
            raise ValueError(f"'every' must be >= 1, got {every}")
        self.every = int(every)
        self.region_code = RegionCode.CRUST_MANTLE
        st = solver.regions[self.region_code]
        self._mesh = st.mesh
        faces = faces_at_radius(
            st.mesh.xyz,
            external_faces(st.ibool),
            constants.R_EARTH_KM,
            rel_tolerance=solver._surface_tolerance(),
            radial_faces_only=solver._deformed_surfaces(),
        )
        if not faces:
            raise ValueError("mesh has no free-surface faces to record")
        self.faces = faces
        from ..mesh.interfaces import FACE_SLICES

        ids = np.unique(
            np.concatenate(
                [st.ibool[(i, *FACE_SLICES[f])].ravel() for i, f in faces]
            )
        )
        self.point_ids = ids
        self.frames: list[np.ndarray] = []
        self.frame_steps: list[int] = []
        self._solver = solver

    def on_step(self, step: int, solver) -> None:
        """Per-step callback for :meth:`GlobalSolver.run`."""
        if step % self.every == 0:
            displ = solver.solid[self.region_code].displ
            self.frames.append(displ[self.point_ids].copy())
            self.frame_steps.append(step)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def write_vtk_series(self, directory: str | Path) -> list[Path]:
        """Write one surface VTK file per recorded frame."""
        from ..io.vtk import write_vtk_surface

        if not self.frames:
            raise ValueError("no frames recorded")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        nglob = self._mesh.nglob
        for frame_index, (step, values) in enumerate(
            zip(self.frame_steps, self.frames)
        ):
            field = np.zeros((nglob, 3))
            field[self.point_ids] = values
            magnitude = np.zeros(nglob)
            magnitude[self.point_ids] = np.linalg.norm(values, axis=1)
            path = write_vtk_surface(
                self._mesh,
                self.faces,
                directory / f"surface_{frame_index:04d}.vtk",
                point_data={
                    "displacement": field,
                    "magnitude": magnitude,
                },
            )
            written.append(path)
        return written
