"""Seismic receivers: station location and seismogram recording.

Section 4.4(2) of the paper: locating recording stations used a costly
non-linear search for the exact (xi, eta, gamma) of each station inside
its host element, plus a per-time-step Lagrange interpolation of the
wavefield there — which at high resolution caused measurable slowdown
*and load imbalance* (stations are unevenly distributed over mesh slices).
The fix: at high resolution, snap each station to the closest GLL point
(the mesh is so dense the location error is geophysically negligible).

Both algorithms are implemented:

* ``interpolated`` — host-element search + Newton inversion of the
  isoparametric mapping + full 125-weight interpolation per step;
* ``closest_point`` — nearest-GLL-point snap + direct array read per step.

For event-batched runs (see :mod:`repro.solver.fields`) a
:class:`BatchedReceiverSet` records all B events' traces from the
batched displacement in one pass per step — buffers are
``(B, nrec, n_steps, 3)`` and ``event_receiver_set(b)`` extracts a
plain :class:`ReceiverSet` per event for the campaign fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..gll.interpolation import interpolation_weights_3d
from ..gll.lagrange import lagrange_basis, lagrange_basis_derivative
from ..gll.quadrature import gll_points_and_weights

__all__ = [
    "Station",
    "LocatedReceiver",
    "ReceiverSet",
    "BatchedReceiverSet",
    "locate_receivers",
]


@dataclass(frozen=True)
class Station:
    """One seismic station: a name and a target Cartesian position."""

    name: str
    position: tuple[float, float, float]


@dataclass
class LocatedReceiver:
    """A station resolved against the mesh.

    ``mode`` is "interpolated" or "closest_point".  For interpolated mode,
    ``element``/``weights`` drive the per-step interpolation; for
    closest-point mode only ``global_index`` is used.
    """

    station: Station
    mode: str
    global_index: int
    location_error: float
    element: int = -1
    weights: np.ndarray | None = None

    @property
    def interpolation_flops_per_step(self) -> int:
        """Per-step recording cost (the load-imbalance driver)."""
        if self.mode == "interpolated":
            n3 = self.weights.size
            return 3 * 2 * n3  # 3 components x (mult+add) per weight
        return 3  # three array reads


class ReceiverSet:
    """All located receivers of a run plus their recording buffers."""

    def __init__(self, receivers: list[LocatedReceiver], n_steps: int, dt: float):
        self.receivers = receivers
        self.n_steps = int(n_steps)
        self.dt = float(dt)
        self.data = np.zeros((len(receivers), n_steps, 3))
        self._step = 0

    def record(self, displ: np.ndarray, ibool: np.ndarray) -> None:
        """Record the current displacement at every receiver."""
        if self._step >= self.n_steps:
            raise RuntimeError("seismogram buffers are full")
        for r, rec in enumerate(self.receivers):
            if rec.mode == "closest_point":
                self.data[r, self._step] = displ[rec.global_index]
            else:
                local = displ[ibool[rec.element]]  # (n, n, n, 3)
                self.data[r, self._step] = np.einsum(
                    "ijk,ijkc->c", rec.weights, local
                )
        self._step += 1

    @property
    def step_cursor(self) -> int:
        """Next step to be recorded (rows below this are already filled)."""
        return self._step

    @step_cursor.setter
    def step_cursor(self, step: int) -> None:
        step = int(step)
        if not 0 <= step <= self.n_steps:
            raise ValueError(
                f"step cursor {step} outside [0, {self.n_steps}]"
            )
        self._step = step

    @property
    def times(self) -> np.ndarray:
        return np.arange(self.n_steps) * self.dt

    def seismogram(self, name: str) -> np.ndarray:
        """(n_steps, 3) displacement history of the named station."""
        for r, rec in enumerate(self.receivers):
            if rec.station.name == name:
                return self.data[r]
        raise KeyError(f"no station named {name!r}")


class BatchedReceiverSet:
    """Recording buffers for an event-batched run: (B, nrec, n_steps, 3).

    One :meth:`record` call per step reads the batched displacement
    ``(B, nglob, 3)`` for every receiver: a closest-point receiver is a
    fancy-indexed copy per event, an interpolated one a 125-weight
    contraction with a free event subscript — both bit-identical per
    event slice to :class:`ReceiverSet` recording event ``b`` alone.
    """

    def __init__(
        self,
        receivers: list[LocatedReceiver],
        batch: int,
        n_steps: int,
        dt: float,
    ):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.receivers = receivers
        self.batch = int(batch)
        self.n_steps = int(n_steps)
        self.dt = float(dt)
        self.data = np.zeros((self.batch, len(receivers), n_steps, 3))
        self._step = 0

    def record(self, displ: np.ndarray, ibool: np.ndarray) -> None:
        """Record the current (B, nglob, 3) displacement at every receiver."""
        if self._step >= self.n_steps:
            raise RuntimeError("seismogram buffers are full")
        for r, rec in enumerate(self.receivers):
            if rec.mode == "closest_point":
                self.data[:, r, self._step] = displ[:, rec.global_index]
            else:
                local = displ[:, ibool[rec.element]]  # (B, n, n, n, 3)
                self.data[:, r, self._step] = np.einsum(
                    "ijk,bijkc->bc", rec.weights, local
                )
        self._step += 1

    @property
    def step_cursor(self) -> int:
        """Next step to be recorded (rows below this are already filled)."""
        return self._step

    @step_cursor.setter
    def step_cursor(self, step: int) -> None:
        step = int(step)
        if not 0 <= step <= self.n_steps:
            raise ValueError(
                f"step cursor {step} outside [0, {self.n_steps}]"
            )
        self._step = step

    @property
    def times(self) -> np.ndarray:
        return np.arange(self.n_steps) * self.dt

    def seismogram(self, name: str, event: int) -> np.ndarray:
        """(n_steps, 3) history of the named station for one event."""
        for r, rec in enumerate(self.receivers):
            if rec.station.name == name:
                return self.data[event, r]
        raise KeyError(f"no station named {name!r}")

    def event_receiver_set(self, event: int) -> ReceiverSet:
        """Per-event :class:`ReceiverSet` (copied buffers) for fan-out."""
        if not 0 <= event < self.batch:
            raise IndexError(
                f"event {event} outside batch of {self.batch}"
            )
        out = ReceiverSet(self.receivers, self.n_steps, self.dt)
        out.data[:] = self.data[event]
        out.step_cursor = self._step
        return out


def _invert_isoparametric(
    element_xyz: np.ndarray, target: np.ndarray, max_iter: int = 20
) -> tuple[np.ndarray, float]:
    """Newton-invert the element mapping: find (xi,eta,gamma) with x(..)=target.

    Returns (reference coords clipped to the cube, final residual distance).
    """
    n = element_xyz.shape[0]
    nodes, _ = gll_points_and_weights(n)
    ref = np.zeros(3)
    for _ in range(max_iter):
        hx = lagrange_basis(nodes, ref[0])
        hy = lagrange_basis(nodes, ref[1])
        hz = lagrange_basis(nodes, ref[2])
        dhx = lagrange_basis_derivative(nodes, ref[0])
        dhy = lagrange_basis_derivative(nodes, ref[1])
        dhz = lagrange_basis_derivative(nodes, ref[2])
        basis = hx[:, None, None] * hy[None, :, None] * hz[None, None, :]
        x = np.einsum("ijk,ijkc->c", basis, element_xyz)
        residual = target - x
        if np.linalg.norm(residual) < 1e-12 * max(1.0, np.abs(target).max()):
            break
        jac = np.stack(
            [
                np.einsum(
                    "ijk,ijkc->c",
                    dhx[:, None, None] * hy[None, :, None] * hz[None, None, :],
                    element_xyz,
                ),
                np.einsum(
                    "ijk,ijkc->c",
                    hx[:, None, None] * dhy[None, :, None] * hz[None, None, :],
                    element_xyz,
                ),
                np.einsum(
                    "ijk,ijkc->c",
                    hx[:, None, None] * hy[None, :, None] * dhz[None, None, :],
                    element_xyz,
                ),
            ],
            axis=1,
        )  # jac[c, l] = dx_c / dxi_l
        try:
            step = np.linalg.solve(jac, residual)
        except np.linalg.LinAlgError:
            break
        ref = np.clip(ref + step, -1.0, 1.0)
    hx = lagrange_basis(nodes, ref[0])
    hy = lagrange_basis(nodes, ref[1])
    hz = lagrange_basis(nodes, ref[2])
    basis = hx[:, None, None] * hy[None, :, None] * hz[None, None, :]
    x = np.einsum("ijk,ijkc->c", basis, element_xyz)
    return ref, float(np.linalg.norm(target - x))


def locate_receivers(
    stations: list[Station],
    xyz: np.ndarray,
    ibool: np.ndarray,
    mode: str = "closest_point",
) -> list[LocatedReceiver]:
    """Resolve stations against a region mesh.

    A KD-tree over all GLL points finds the nearest mesh point; in
    interpolated mode the elements sharing that point are then searched
    with Newton inversion and the best-fitting one hosts the station.
    """
    if mode not in ("closest_point", "interpolated"):
        raise ValueError(f"unknown station location mode {mode!r}")
    flat_xyz = xyz.reshape(-1, 3)
    flat_ibool = ibool.ravel()
    tree = cKDTree(flat_xyz)
    n3 = ibool.shape[1] * ibool.shape[2] * ibool.shape[3]
    out: list[LocatedReceiver] = []
    for station in stations:
        target = np.asarray(station.position, dtype=np.float64)
        dist, flat_index = tree.query(target)
        if mode == "closest_point":
            out.append(
                LocatedReceiver(
                    station=station,
                    mode=mode,
                    global_index=int(flat_ibool[flat_index]),
                    location_error=float(dist),
                )
            )
            continue
        # Interpolated: try every element containing the nearest point.
        nearest_global = flat_ibool[flat_index]
        candidate_elements = np.unique(
            np.nonzero((ibool == nearest_global).reshape(ibool.shape[0], -1))[0]
        )
        best = None
        for e in candidate_elements:
            ref, err = _invert_isoparametric(xyz[e], target)
            if best is None or err < best[2]:
                best = (int(e), ref, err)
        element, ref, err = best
        weights = interpolation_weights_3d(xyz.shape[1], *ref)
        out.append(
            LocatedReceiver(
                station=station,
                mode=mode,
                global_index=int(nearest_global),
                location_error=err,
                element=element,
                weights=weights,
            )
        )
    return out
