"""Explicit second-order (Newmark) time marching.

Section 2.4 of the paper: with the diagonal mass matrix, the global system
``M U'' + K U = F`` is marched with the classical explicit second-order
finite-difference (central-difference / Newmark gamma=1/2, beta=0) scheme,
conditionally stable under the Courant limit.  The scheme is split into a
*predictor* (advance displacement with the old acceleration, half-advance
velocity) and a *corrector* (finish the velocity with the new
acceleration) so that force evaluation happens exactly once per step.

Batch-aware contract: every update here is an elementwise in-place
operation (``+=`` / ``[:] = 0``), so the same functions serve both field
layouts of :mod:`repro.solver.fields` — unbatched ``(nglob[, 3])`` and
batched ``(B, nglob[, 3])`` — with no dispatch.  Elementwise updates are
trivially bit-identical per event slice: advancing a batched array and
advancing each ``field[b]`` separately perform the exact same scalar
operations in the same order.  Callers own the arrays; nothing here
allocates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["predictor", "corrector", "predictor_scalar", "corrector_scalar"]


def predictor(displ: np.ndarray, veloc: np.ndarray, accel: np.ndarray, dt: float) -> None:
    """In-place predictor: u += dt v + dt^2/2 a ; v += dt/2 a ; a = 0."""
    displ += dt * veloc + (0.5 * dt * dt) * accel
    veloc += (0.5 * dt) * accel
    accel[:] = 0.0


def corrector(veloc: np.ndarray, accel: np.ndarray, dt: float) -> None:
    """In-place corrector with the newly computed acceleration."""
    veloc += (0.5 * dt) * accel


# The scalar (fluid potential) variants are identical numerically; separate
# names keep call sites self-documenting.
predictor_scalar = predictor
corrector_scalar = corrector


def stable_timestep(dt_courant: float, safety: float = 1.0) -> float:
    """Final solver time step from the mesh Courant estimate."""
    if dt_courant <= 0:
        raise ValueError(f"Courant dt must be positive, got {dt_courant}")
    return dt_courant * safety
