"""Displacement-based non-iterative solid-fluid coupling (CMB and ICB).

The paper lists "non-iterative coupling between fluid and solid based on
the displacement vector [4] instead of velocity" among the algorithmic
changes enabling peta-scalability.  With the fluid potential chi
(displacement ``s_f = (1/rho) grad chi``, pressure ``p = -chi_ddot``), the
surface terms of the two weak forms are:

* fluid equation:   + int_Gamma  w   (s_solid . n)  dS
* solid equation:   - int_Gamma  w_c n_c chi_ddot   dS

with n the unit normal pointing *out of the fluid*.  Updating the fluid
first (its surface term needs only the already-updated solid
*displacement*) and the solid second (its term uses the fresh
``chi_ddot``) makes the exchange explicit and single-pass — no iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.interfaces import FACE_SLICES, CouplingSurface

__all__ = ["CouplingOperator", "build_coupling_operator"]


@dataclass
class CouplingOperator:
    """Pointwise-matched coupling data for one interface.

    All arrays share the leading (n_faces, n, n) face-grid layout of the
    fluid side; ``solid_ids`` holds, for each fluid face point, the global
    index of the *coincident* solid-region point.
    """

    radius: float
    fluid_ids: np.ndarray
    solid_ids: np.ndarray
    normals: np.ndarray  # (n_faces, n, n, 3), out of the fluid
    weights: np.ndarray  # (n_faces, n, n) area measures

    def add_fluid_coupling(
        self, chi_force: np.ndarray, solid_displ: np.ndarray
    ) -> None:
        """Add ``+ w (s_solid . n)`` to the assembled fluid force vector.

        Accepts the batched layout too: ``chi_force`` (B, nglob_f) with
        ``solid_displ`` (B, nglob_s, 3); the normal projection runs as
        one einsum over the batch and the surface scatter-add runs per
        event with the unbatched index order (bit-identical slices).
        """
        if solid_displ.ndim == 3:
            u_n = np.einsum(
                "bfijc,fijc->bfij",
                solid_displ[:, self.solid_ids],
                self.normals,
            )
            ids = self.fluid_ids.ravel()
            for b in range(solid_displ.shape[0]):
                np.add.at(
                    chi_force[b], ids, (self.weights * u_n[b]).ravel()
                )
            return
        u_n = np.einsum(
            "fijc,fijc->fij", solid_displ[self.solid_ids], self.normals
        )
        np.add.at(chi_force, self.fluid_ids.ravel(), (self.weights * u_n).ravel())

    def add_solid_coupling(
        self, solid_force: np.ndarray, chi_ddot: np.ndarray
    ) -> None:
        """Add ``- w n chi_ddot`` to the assembled solid force vector.

        Batched layout: ``solid_force`` (B, nglob_s, 3) with ``chi_ddot``
        (B, nglob_f); per-event scatter order matches the unbatched path.
        """
        if chi_ddot.ndim == 2:
            contribution = (
                -(self.weights * chi_ddot[:, self.fluid_ids])[..., None]
                * self.normals
            )
            ids = self.solid_ids.ravel()
            flat = contribution.reshape(chi_ddot.shape[0], -1, 3)
            for b in range(chi_ddot.shape[0]):
                for c in range(3):
                    np.add.at(solid_force[b, :, c], ids, flat[b, :, c])
            return
        contribution = (
            -(self.weights * chi_ddot[self.fluid_ids])[..., None] * self.normals
        )
        flat = contribution.reshape(-1, 3)
        ids = self.solid_ids.ravel()
        for c in range(3):
            np.add.at(solid_force[:, c], ids, flat[:, c])


def build_coupling_operator(
    surface: CouplingSurface,
    fluid_ibool: np.ndarray,
    fluid_xyz: np.ndarray,
    solid_ibool: np.ndarray,
    solid_xyz: np.ndarray,
) -> CouplingOperator:
    """Resolve a geometric :class:`CouplingSurface` into global indices.

    Fluid-side ids come directly from the face slices; solid-side ids are
    found by coordinate matching against the solid faces (the two regions
    have independent numberings, and the face grids may disagree in
    orientation, so matching must be pointwise-geometric).
    """
    tol = max(surface.radius, 1.0) * 1e-8
    # Hash all solid points on the matched solid faces.
    solid_lookup: dict[tuple[int, int, int], int] = {}
    for ispec, face_id in surface.solid_faces:
        ids = solid_ibool[(ispec, *FACE_SLICES[face_id])]
        pts = solid_xyz[(ispec, *FACE_SLICES[face_id])]
        q = np.round(pts / tol).astype(np.int64)
        for key, gid in zip(map(tuple, q.reshape(-1, 3)), ids.ravel()):
            solid_lookup[key] = int(gid)
    fluid_ids = []
    solid_ids = []
    for ispec, face_id in surface.fluid_faces:
        f_ids = fluid_ibool[(ispec, *FACE_SLICES[face_id])]
        pts = fluid_xyz[(ispec, *FACE_SLICES[face_id])]
        q = np.round(pts / tol).astype(np.int64)
        s_ids = np.empty_like(f_ids)
        flat_keys = list(map(tuple, q.reshape(-1, 3)))
        for pos, key in enumerate(flat_keys):
            if key not in solid_lookup:
                raise ValueError(
                    f"no solid point matches fluid coupling point at "
                    f"r={surface.radius}: face ({ispec}, {face_id})"
                )
            s_ids.ravel()[pos] = solid_lookup[key]
        fluid_ids.append(f_ids)
        solid_ids.append(s_ids)
    return CouplingOperator(
        radius=surface.radius,
        fluid_ids=np.asarray(fluid_ids),
        solid_ids=np.asarray(solid_ids),
        normals=surface.normals,
        weights=surface.weights,
    )
