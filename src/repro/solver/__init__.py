"""The solver: time marching, assembly, coupling, sources, receivers."""

from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .movie import SurfaceMovieRecorder
from .assembly import (
    assemble_mass_matrix,
    assemble_scalar_mass_matrix,
    gather,
    scatter_add,
)
from .attenuation import AttenuationState, build_attenuation
from .body_terms import coriolis_local_force, gravity_local_force
from .coupling import CouplingOperator, build_coupling_operator
from .fields import FluidField, SolidField
from .newmark import corrector, corrector_scalar, predictor, predictor_scalar
from .oceans import OceanLoad, build_ocean_load
from .receivers import LocatedReceiver, ReceiverSet, Station, locate_receivers
from .solver import GlobalSolver, SolverResult, SolverTimings
from .sources import (
    MomentTensorSource,
    PointForceSource,
    gaussian_stf,
    moment_tensor_source_array,
    point_force_source_array,
    ricker_stf,
    step_stf,
)

__all__ = [
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "SurfaceMovieRecorder",
    "assemble_mass_matrix",
    "assemble_scalar_mass_matrix",
    "gather",
    "scatter_add",
    "AttenuationState",
    "build_attenuation",
    "coriolis_local_force",
    "gravity_local_force",
    "CouplingOperator",
    "build_coupling_operator",
    "FluidField",
    "SolidField",
    "corrector",
    "corrector_scalar",
    "predictor",
    "predictor_scalar",
    "OceanLoad",
    "build_ocean_load",
    "LocatedReceiver",
    "ReceiverSet",
    "Station",
    "locate_receivers",
    "GlobalSolver",
    "SolverResult",
    "SolverTimings",
    "MomentTensorSource",
    "PointForceSource",
    "gaussian_stf",
    "moment_tensor_source_array",
    "point_force_source_array",
    "ricker_stf",
    "step_stf",
]
