"""The solver (SPECFEM's ``specfem3D``): coupled global wave propagation.

Orchestrates one simulation over a mesh bundle (the merged serial globe
mesh, or one slice of the distributed run — the same class serves both,
with cross-rank assembly injected through the ``assembler`` hook the
virtual-MPI launcher provides):

* three regions (two solid, one fluid) marched with the explicit Newmark
  scheme of Section 2.4;
* internal forces from the :mod:`repro.kernels` variants of Section 4.3;
* displacement-based non-iterative solid-fluid coupling at CMB and ICB;
* optional attenuation (memory variables), rotation (Coriolis),
  self-gravitation (Cowling), and ocean load;
* moment-tensor sources and interpolated/closest-point receivers
  (Section 4.4);
* optional comm/compute overlap: with an ``overlap_exchanger`` and
  per-region ``element_splits`` injected, each step computes
  *boundary* elements first, posts the non-blocking halo exchange
  (their scatter already carries the complete local contribution at
  every slice-shared point — interior elements touch none), computes
  the *interior* elements while the messages are in flight, and only
  then waits.  The final assembly reproduces the blocking force sum in
  the original element order, so the two paths are bit-identical; only
  the time blocked in ``halo.wait`` changes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..config import constants
from ..config.parameters import SimulationParameters
from ..gll.lagrange import GLLBasis
from ..kernels.acoustic import compute_forces_acoustic
from ..kernels.elastic import compute_forces_elastic, compute_strain
from ..kernels.flops import (
    acoustic_kernel_flops,
    attenuation_update_flops,
    elastic_kernel_flops,
    newmark_update_flops,
)
from ..kernels.geometry import compute_geometry
from ..mesh.element import RegionMesh
from ..mesh.interfaces import external_faces, faces_at_radius, match_coupling_faces
from ..mesh.quality import estimate_time_step
from ..model.prem import PREM, RegionCode
from ..obs.tracer import maybe_tracer
from . import newmark
from .assembly import (
    assemble_mass_matrix,
    assemble_scalar_mass_matrix,
    gather,
    gather_batched,
    scatter_add,
    scatter_add_batched,
)
from .attenuation import AttenuationState, build_attenuation
from .body_terms import coriolis_local_force, gravity_local_force
from .coupling import CouplingOperator, build_coupling_operator
from .fields import FluidField, SolidField
from .oceans import OceanLoad, build_ocean_load
from .receivers import (
    BatchedReceiverSet,
    ReceiverSet,
    Station,
    locate_receivers,
)
from .sources import MomentTensorSource, PointForceSource, moment_tensor_source_array

__all__ = ["GlobalSolver", "SolverResult", "SolverTimings"]

#: Metres per mesh coordinate unit (meshes are built in km).
LENGTH_SCALE = 1000.0


@dataclass
class SolverTimings:
    """Wall-clock split of one run (the IPM-style summary).

    ``compute_cpu_s`` uses the per-thread CPU clock: under thread
    oversubscription (many virtual ranks on few cores) it measures actual
    work done, where the wall clock would count scheduler wait.
    """

    compute_s: float = 0.0
    compute_cpu_s: float = 0.0
    assembly_s: float = 0.0
    total_s: float = 0.0
    steps: int = 0


@dataclass
class SolverResult:
    """Outputs of one run.

    ``receivers`` is a :class:`ReceiverSet` for unbatched runs and a
    :class:`BatchedReceiverSet` for event-batched ones, in which case
    ``seismograms`` carries a leading event axis (B, nrec, n_steps, 3).
    """

    receivers: ReceiverSet | BatchedReceiverSet | None
    timings: SolverTimings
    dt: float
    n_steps: int
    energy_history: np.ndarray | None = None

    @property
    def seismograms(self) -> np.ndarray | None:
        return self.receivers.data if self.receivers is not None else None


class _RegionState:
    """Per-region solver state: geometry, materials (SI), fields, mass."""

    def __init__(self, mesh: RegionMesh, basis: GLLBasis):
        self.mesh = mesh
        self.xyz_m = mesh.xyz * LENGTH_SCALE
        self.geom = compute_geometry(self.xyz_m, basis)
        self.rho = mesh.rho
        self.mu = mesh.mu
        self.lam = mesh.kappa - (2.0 / 3.0) * mesh.mu
        self.q_mu = mesh.q_mu
        self.ibool = mesh.ibool
        self.nglob = mesh.nglob
        # Transverse isotropy: precompute the radial frames once.
        self.ti_moduli = mesh.ti_moduli
        self.ti_frames = (
            None if mesh.ti_moduli is None else _radial_frames_cached(self.xyz_m)
        )


def _radial_frames_cached(xyz_m: np.ndarray) -> np.ndarray:
    from ..kernels.anisotropic import radial_frames

    return radial_frames(xyz_m)


class _RegionSubset:
    """A boundary or interior element subset of one region's state.

    Holds element-sliced views of everything the force kernels consume
    (geometry, materials, numbering, physics extras), precomputed once at
    solver build so the overlapped time loop pays no per-step slicing of
    static data.  ``idx`` is an ascending element-index array into the
    region's original element order; kernels applied per subset produce
    exactly the rows the full-region kernel would, because every kernel
    is elementwise over the leading (element) axis.
    """

    def __init__(self, solver: "GlobalSolver", code: int, idx: np.ndarray):
        st = solver.regions[code]
        n3 = constants.NGLLX**3
        self.idx = idx
        self.ibool = st.ibool[idx]
        geom = st.geom
        self.geom = type(geom)(
            inv_jacobian=geom.inv_jacobian[idx],
            jacobian=geom.jacobian[idx],
            jweight=geom.jweight[idx],
        )
        self.rho = st.rho[idx]
        self.mu = None if st.mu is None else st.mu[idx]
        self.lam = None if st.lam is None else st.lam[idx]
        self.xyz_m = st.xyz_m[idx]
        if st.ti_moduli is None:
            self.ti_moduli = None
            self.ti_frames = None
        else:
            m = st.ti_moduli
            self.ti_moduli = type(m)(
                A=m.A[idx], C=m.C[idx], L=m.L[idx], N=m.N[idx], F=m.F[idx]
            )
            self.ti_frames = st.ti_frames[idx]
        g = solver.gravity_g.get(code)
        self.gravity_g = None if g is None else g[idx]
        #: Attenuation memory variables are updated per subset (the two
        #: subsets partition the region's elements, so the elementwise
        #: relaxation is unchanged).
        self.atten_elements = idx
        self.gll_points_count = float(idx.size * n3)
        if code == solver.fluid_code:
            self.rho_inv = 1.0 / self.rho
            self.acoustic_flops = float(acoustic_kernel_flops(idx.size))
        else:
            self.elastic_flops = float(elastic_kernel_flops(idx.size))
            self.atten_flops = float(attenuation_update_flops(idx.size))


class GlobalSolver:
    """Set up and run one coupled global simulation.

    Parameters
    ----------
    mesh_bundle : object with ``regions: dict[int, RegionMesh]`` (a
        :class:`repro.mesh.GlobalMesh` or :class:`repro.mesh.SliceMesh`).
    params : simulation parameters (kernel variant, physics switches...).
    sources, stations : source and receiver definitions (positions in km).
    assembler : optional hook ``(region, global_array) -> global_array``
        performing cross-rank assembly; identity for serial runs.
    mass_assembler : same, applied once to the mass matrices at setup.
    overlap_exchanger : optional non-blocking halo exchanger (duck-typed
        :class:`repro.parallel.halo.HaloExchanger`: ``post``/``wait`` and
        ``post_many``/``wait_many``).  Together with ``element_splits``
        it switches the time loop to the overlapped schedule — boundary
        elements, post, interior elements, wait.
    element_splits : dict ``region -> ElementSplit`` (from
        :func:`repro.mesh.partition.split_slice_elements`) classifying
        each region's elements as halo-touching or interior.  Regions
        missing from the dict are treated as all-interior.
    event_sources : list of per-event source lists.  When given, the
        solver runs in *event-batched* mode with ``B = len(event_sources)``
        events sharing this mesh: field arrays carry a leading event axis
        (see :mod:`repro.solver.fields`), the hot kernels sweep all
        events in one pass, and each event ``b`` receives only its own
        sources in ``force[b]``.  Mutually exclusive with ``sources``.
        Every per-event time loop is bit-identical to an unbatched run of
        that event alone (tests/test_batching.py).
    """

    def __init__(
        self,
        mesh_bundle,
        params: SimulationParameters,
        sources: list[MomentTensorSource | PointForceSource] | None = None,
        stations: list[Station] | None = None,
        assembler: Callable[[int, np.ndarray], np.ndarray] | None = None,
        mass_assembler: Callable[[int, np.ndarray], np.ndarray] | None = None,
        multi_assembler: Callable[[dict], dict] | None = None,
        dt_override: float | None = None,
        tracer=None,
        metrics=None,
        overlap_exchanger=None,
        element_splits: dict | None = None,
        health_sentinel=None,
        stream=None,
        event_sources: list[list] | None = None,
    ):
        self.params = params
        if event_sources is not None:
            if sources:
                raise ValueError(
                    "pass either sources (unbatched) or event_sources "
                    "(batched), not both"
                )
            if len(event_sources) < 1:
                raise ValueError("event_sources must hold at least one event")
        #: Event-batch size (None = historical unbatched layout).
        self.batch: int | None = (
            len(event_sources) if event_sources is not None else None
        )
        # Layout-dispatched assembly helpers: picked once here so the hot
        # loop runs a single code path for either layout.
        self._gather = gather if self.batch is None else gather_batched
        self._scatter_add = (
            scatter_add if self.batch is None else scatter_add_batched
        )
        #: Observability hooks: a no-op tracer unless one is injected, and
        #: an optional :class:`~repro.obs.metrics.MetricsRegistry` sampled
        #: per timestep.
        self.tracer = maybe_tracer(tracer)
        self.metrics = metrics
        #: Optional :class:`~repro.obs.stream.StreamingTelemetry`: one
        #: ring-buffer sample per time step, flushed as JSONL so long
        #: runs are watchable live.  The solver only *reads* state into
        #: the stream, so streamed and unstreamed runs are bit-identical.
        self.stream = stream
        #: Numerical health sentinel (:mod:`repro.chaos.sentinel`): either
        #: injected (the launcher passes per-rank sentinels) or
        #: auto-created when ``params.health_check_every`` is set, so every
        #: entry point — serial apps, segmented campaigns, distributed
        #: runs — gets the same divergence detection from one knob.
        if health_sentinel is None and params.health_check_every is not None:
            from ..chaos.sentinel import HealthSentinel

            health_sentinel = HealthSentinel(
                check_every=params.health_check_every
            )
        self.health_sentinel = health_sentinel
        self.basis = GLLBasis(constants.NGLLX)
        self.assembler = assembler or (lambda region, arr: arr)
        #: Optional combined-message assembler for several solid regions at
        #: once (the paper's crust-mantle + inner-core message merging).
        self.multi_assembler = multi_assembler
        mass_assembler = mass_assembler or self.assembler
        self.regions = {
            code: _RegionState(mesh, self.basis)
            for code, mesh in mesh_bundle.regions.items()
        }
        # Fluid/solid split by the meshes' own flags (region code by
        # default; overridable for non-PREM material models, e.g. the
        # homogeneous solid sphere used in normal-mode validation).
        self.solid_codes = [
            c for c, st in self.regions.items() if not st.mesh.is_fluid
        ]
        fluid_codes = [c for c, st in self.regions.items() if st.mesh.is_fluid]
        if len(fluid_codes) > 1:
            raise ValueError("at most one fluid region is supported")
        self.fluid_code = fluid_codes[0] if fluid_codes else None

        # Per-phase flop estimates (the PSiNS-analog counters attached to
        # kernel spans), computed once so the hot loop only reads them.
        n3 = constants.NGLLX**3
        self._elastic_flops = {
            code: float(elastic_kernel_flops(self.regions[code].mesh.nspec))
            for code in self.solid_codes
        }
        self._atten_flops = {
            code: float(attenuation_update_flops(self.regions[code].mesh.nspec))
            for code in self.solid_codes
        }
        self._acoustic_flops = (
            float(acoustic_kernel_flops(self.regions[self.fluid_code].mesh.nspec))
            if self.fluid_code is not None
            else 0.0
        )
        self._gll_points = {
            code: float(st.mesh.nspec * n3) for code, st in self.regions.items()
        }
        self._newmark_flops = float(
            sum(
                newmark_update_flops(self.regions[c].nglob, 3)
                for c in self.solid_codes
            )
            + (
                newmark_update_flops(self.regions[self.fluid_code].nglob, 1)
                if self.fluid_code is not None
                else 0
            )
        )

        # -- Mass matrices (assembled across ranks through the hook) -------
        self.mass: dict[int, np.ndarray] = {}
        for code in self.solid_codes:
            st = self.regions[code]
            local_mass = assemble_mass_matrix(st.rho, st.geom, st.ibool, st.nglob)
            self.mass[code] = mass_assembler(code, local_mass)
        if self.fluid_code is not None:
            st = self.regions[self.fluid_code]
            kappa_inv = 1.0 / st.mesh.kappa
            local_mass = assemble_scalar_mass_matrix(
                kappa_inv, st.geom, st.ibool, st.nglob
            )
            self.mass[self.fluid_code] = mass_assembler(self.fluid_code, local_mass)

        # -- Time step ------------------------------------------------------
        # Distributed runs pass the already-agreed global minimum dt so the
        # attenuation coefficients (which depend on dt) are consistent.
        if dt_override is not None:
            if dt_override <= 0:
                raise ValueError(f"dt_override must be positive, got {dt_override}")
            self.dt = float(dt_override)
        else:
            self.dt = estimate_time_step(
                [st.mesh for st in self.regions.values()],
                courant=params.courant,
                length_scale=LENGTH_SCALE,
            )
        if params.nstep_override is not None:
            self.n_steps = int(params.nstep_override)
        else:
            self.n_steps = max(1, int(np.ceil(params.record_length_s / self.dt)))

        # -- Coupling operators ----------------------------------------------
        self.couplings: list[tuple[int, CouplingOperator]] = []
        if self.fluid_code is not None:
            self._build_couplings()

        # -- Physics extras ----------------------------------------------------
        self.attenuation: dict[int, AttenuationState] = {}
        if params.attenuation:
            f_centre = 1.0 / max(params.record_length_s / 10.0, 4 * self.dt)
            for code in self.solid_codes:
                st = self.regions[code]
                self.attenuation[code] = build_attenuation(
                    st.q_mu, self.dt, f_centre / 3.0, f_centre * 3.0,
                    batch=self.batch,
                )
        self.omega_vector = (
            np.array([0.0, 0.0, constants.EARTH_OMEGA]) if params.rotation else None
        )
        self.gravity_g: dict[int, np.ndarray] = {}
        if params.gravity:
            for code in self.solid_codes:
                st = self.regions[code]
                r_km = np.linalg.norm(st.mesh.xyz, axis=-1)
                g = np.interp(
                    r_km,
                    np.linspace(0, constants.R_EARTH_KM, 200),
                    [PREM.gravity(float(r))
                     for r in np.linspace(0, constants.R_EARTH_KM, 200)],
                )
                self.gravity_g[code] = g
        self.ocean_load: OceanLoad | None = None
        if params.oceans and RegionCode.CRUST_MANTLE in self.regions:
            st = self.regions[RegionCode.CRUST_MANTLE]
            surf = faces_at_radius(
                st.mesh.xyz,
                external_faces(st.ibool),
                constants.R_EARTH_KM,
                rel_tolerance=self._surface_tolerance(),
                radial_faces_only=self._deformed_surfaces(),
            )
            w2 = np.outer(self.basis.weights, self.basis.weights)
            self.ocean_load = build_ocean_load(
                surf, st.mesh.xyz, st.ibool, w2, length_scale=LENGTH_SCALE
            )

        # -- Sources and receivers ----------------------------------------------
        self.source_terms: list[tuple[int, int, np.ndarray, object]] = []
        for source in sources or []:
            self.source_terms.append(self._locate_source(source))
        #: Batched-mode source terms: (event, region, element, array, source).
        self.event_source_terms: list[
            tuple[int, int, int, np.ndarray, object]
        ] = []
        if event_sources is not None:
            for b, event in enumerate(event_sources):
                for source in event:
                    self.event_source_terms.append(
                        (b, *self._locate_source(source))
                    )
        self.receiver_set: ReceiverSet | BatchedReceiverSet | None = None
        if stations:
            st = self.regions[RegionCode.CRUST_MANTLE]
            located = locate_receivers(
                stations, st.mesh.xyz, st.ibool, mode=params.station_location
            )
            if self.batch is None:
                self.receiver_set = ReceiverSet(located, self.n_steps, self.dt)
            else:
                self.receiver_set = BatchedReceiverSet(
                    located, self.batch, self.n_steps, self.dt
                )

        # -- Fields ------------------------------------------------------------
        self.solid: dict[int, SolidField] = {
            code: SolidField.zeros(self.regions[code].nglob, batch=self.batch)
            for code in self.solid_codes
        }
        self.fluid: FluidField | None = (
            FluidField.zeros(self.regions[self.fluid_code].nglob, batch=self.batch)
            if self.fluid_code is not None
            else None
        )
        self.timings = SolverTimings()

        # -- Comm/compute overlap ----------------------------------------------
        # Attach the per-view metadata the shared force helper reads, so the
        # blocking path and the overlapped subsets go through identical code.
        for code in self.solid_codes:
            st = self.regions[code]
            st.atten_elements = None  # full-region attenuation update
            st.gravity_g = self.gravity_g.get(code)
            st.elastic_flops = self._elastic_flops[code]
            st.atten_flops = self._atten_flops[code]
            st.gll_points_count = self._gll_points[code]
        self.overlap_exchanger = overlap_exchanger
        self._overlap = overlap_exchanger is not None and element_splits is not None
        self._subsets: dict[int, dict[str, _RegionSubset]] = {}
        if self._overlap:
            for code, st in self.regions.items():
                split = element_splits.get(code)
                if split is None:
                    boundary = np.empty(0, dtype=np.intp)
                    interior = np.arange(st.ibool.shape[0], dtype=np.intp)
                else:
                    boundary = np.asarray(split.boundary, dtype=np.intp)
                    interior = np.asarray(split.interior, dtype=np.intp)
                self._subsets[code] = {
                    "boundary": _RegionSubset(self, code, boundary),
                    "interior": _RegionSubset(self, code, interior),
                }
        # Per-region scratch for the overlap path's full-order re-scatter:
        # allocated once here so no time step allocates (rule R3).  Every
        # element row is overwritten (boundary ∪ interior covers all
        # elements), so stale contents can never leak into a step.
        self._scratch_local: dict[int, np.ndarray] = {}
        if self._overlap:
            for code, st in self.regions.items():
                shape = (
                    st.ibool.shape + (3,)
                    if code in self.solid_codes
                    else st.ibool.shape
                )
                if self.batch is not None:
                    shape = (self.batch, *shape)
                self._scratch_local[code] = np.empty(shape, dtype=np.float64)

    # ------------------------------------------------------------------ setup

    def _deformed_surfaces(self) -> bool:
        """True when mesh surfaces deviate from exact spheres."""
        return self.params.ellipticity or self.params.topography

    def _surface_tolerance(self) -> float:
        # Ellipticity moves interfaces by ~0.3%; synthetic topography by up
        # to ~0.2% near the surface. 2% stays well clear of layer thickness.
        return 0.02 if self._deformed_surfaces() else 1e-6

    def _build_couplings(self) -> None:
        fl = self.regions[self.fluid_code]
        w2 = np.outer(self.basis.weights, self.basis.weights)
        fluid_ext = external_faces(fl.ibool)
        tol = self._surface_tolerance()
        radial_only = self._deformed_surfaces()
        for radius_km, solid_code, orientation in (
            (constants.R_CMB_KM, RegionCode.CRUST_MANTLE, +1.0),
            (constants.R_ICB_KM, RegionCode.INNER_CORE, -1.0),
        ):
            if solid_code not in self.regions:
                continue
            sol = self.regions[solid_code]
            fluid_faces = faces_at_radius(
                fl.mesh.xyz, fluid_ext, radius_km,
                rel_tolerance=tol, radial_faces_only=radial_only,
            )
            solid_faces = faces_at_radius(
                sol.mesh.xyz, external_faces(sol.ibool), radius_km,
                rel_tolerance=tol, radial_faces_only=radial_only,
            )
            if not fluid_faces:
                continue
            surface = match_coupling_faces(
                fl.mesh.xyz,
                fluid_faces,
                sol.mesh.xyz,
                solid_faces,
                radius_km,
                w2,
                outward_from_fluid=orientation,
            )
            # Convert area weights (km^2) and radius to metres.
            surface.weights = surface.weights * LENGTH_SCALE**2
            op = build_coupling_operator(
                surface, fl.ibool, fl.mesh.xyz, sol.ibool, sol.mesh.xyz
            )
            self.couplings.append((solid_code, op))

    def _locate_source(self, source) -> tuple[int, int, np.ndarray, object]:
        """Resolve a source into (region, element, source_array, source)."""
        position = np.asarray(source.position, dtype=np.float64)
        r = float(np.linalg.norm(position))
        region = PREM.region_of(r)
        if region == RegionCode.OUTER_CORE:
            raise ValueError("sources inside the fluid outer core are not supported")
        st = self.regions[region]
        located = locate_receivers(
            [Station("src", tuple(position))],
            st.mesh.xyz,
            st.ibool,
            mode="interpolated",
        )[0]
        e = located.element
        # Reference coordinates recovered from the interpolation weights by
        # re-running the Newton inversion (cheap, done once).
        from .receivers import _invert_isoparametric

        ref, _err = _invert_isoparametric(st.mesh.xyz[e], position)
        if isinstance(source, MomentTensorSource):
            # Jacobian at the source point, in SI length units.
            inv_jac = self._inverse_jacobian_at(st, e, ref)
            arr = moment_tensor_source_array(
                source.moment, st.xyz_m[e], inv_jac, *ref
            )
        else:
            from .sources import point_force_source_array

            arr = point_force_source_array(
                np.asarray(source.force), st.mesh.ngll, *ref
            )
        return region, e, arr, source

    def _inverse_jacobian_at(
        self, st: _RegionState, element: int, ref: np.ndarray
    ) -> np.ndarray:
        from ..gll.lagrange import lagrange_basis, lagrange_basis_derivative
        from ..gll.quadrature import gll_points_and_weights

        n = st.mesh.ngll
        nodes, _ = gll_points_and_weights(n)
        hx, hy, hz = (lagrange_basis(nodes, v) for v in ref)
        dhx, dhy, dhz = (lagrange_basis_derivative(nodes, v) for v in ref)
        exyz = st.xyz_m[element]
        jac = np.stack(
            [
                np.einsum("ijk,ijkc->c",
                          dhx[:, None, None] * hy[None, :, None] * hz[None, None, :],
                          exyz),
                np.einsum("ijk,ijkc->c",
                          hx[:, None, None] * dhy[None, :, None] * hz[None, None, :],
                          exyz),
                np.einsum("ijk,ijkc->c",
                          hx[:, None, None] * hy[None, :, None] * dhz[None, None, :],
                          exyz),
            ],
            axis=0,
        )  # jac[l, c] = dx_c / dxi_l
        return np.linalg.inv(jac).T  # [l, c] = dxi_l / dx_c

    # -------------------------------------------------------------- initial

    def set_initial_displacement(self, displacement_fn) -> None:
        """Set u(x, 0) on every solid region from a callable of coordinates.

        ``displacement_fn`` receives (nglob, 3) coordinates in km and
        returns (nglob, 3) displacements in metres.  Velocities and the
        fluid potential are zeroed (cosine-phase start) — used by the
        normal-mode validation, which initialises an analytic eigenmode.
        """
        for code in self.solid_codes:
            st = self.regions[code]
            coords = np.empty((st.nglob, 3), dtype=np.float64)
            coords[st.ibool.ravel()] = st.mesh.xyz.reshape(-1, 3)
            field = self.solid[code]
            field.displ[:] = displacement_fn(coords)
            field.veloc[:] = 0.0
            field.accel[:] = 0.0
        if self.fluid is not None:
            self.fluid.chi[:] = 0.0
            self.fluid.chi_dot[:] = 0.0
            self.fluid.chi_ddot[:] = 0.0

    # ------------------------------------------------------------------- run

    def run(
        self,
        n_steps: int | None = None,
        track_energy: bool = False,
        energy_every: int = 10,
        callbacks: list | None = None,
        start_step: int = 0,
        stop_step: int | None = None,
        metrics_from_step: int | None = None,
    ) -> SolverResult:
        """March the coupled system and return seismograms and timings.

        ``callbacks`` are invoked as ``cb(step, solver)`` after every step
        (movie recorders, checkpoint writers, custom probes).

        ``n_steps`` is the length of the run's time grid (seismogram
        buffers are sized to it); marching covers ``[start_step,
        stop_step)`` — by default the whole grid.  A checkpointed segment
        restores its state, then runs with ``start_step`` at the resume
        point and ``stop_step`` at its wall-limit boundary; the restored
        receiver buffers are preserved, not re-allocated.

        ``metrics_from_step`` suppresses per-step metrics emission for
        steps below it (default: ``start_step``, i.e. emit everything
        marched).  The segmented executor passes its *planned* segment
        boundary here: when a corrupt checkpoint forces a restart from an
        older step, the re-run of the already-counted span must not
        re-add ``solver.steps``/byte counters or duplicate time-series
        points — a segmented run's metrics match an uninterrupted run's
        exactly, like its seismograms.  Streaming telemetry is *not*
        gated: the stream is an honest log of what executed (re-run
        steps appear twice; the aggregator dedupes keep-last).
        """
        n_steps = int(n_steps) if n_steps is not None else self.n_steps
        start_step = int(start_step)
        stop = n_steps if stop_step is None else int(stop_step)
        if not 0 <= start_step <= stop <= n_steps:
            raise ValueError(
                f"need 0 <= start_step <= stop_step <= n_steps, got "
                f"[{start_step}, {stop}) of {n_steps}"
            )
        if self.receiver_set is not None and n_steps != self.receiver_set.n_steps:
            if start_step > 0:
                # A resumed segment must keep the restored buffers: a
                # re-allocation here would silently drop recorded rows.
                raise ValueError(
                    f"resumed run (start_step={start_step}) expects the "
                    f"receiver buffer length {self.receiver_set.n_steps} "
                    f"to match n_steps {n_steps}"
                )
            if self.batch is None:
                self.receiver_set = ReceiverSet(
                    self.receiver_set.receivers, n_steps, self.dt
                )
            else:
                self.receiver_set = BatchedReceiverSet(
                    self.receiver_set.receivers, self.batch, n_steps, self.dt
                )
        energies: list[float] = []
        tr = self.tracer
        metrics = self.metrics
        metrics_from = (
            start_step if metrics_from_step is None else int(metrics_from_step)
        )
        stream = self.stream
        if stream is not None:
            comm_fn = stream.comm_time_fn
            halo_fn = stream.halo_wait_fn
            comm_prev = comm_fn() if comm_fn is not None else 0.0
            halo_prev = halo_fn() if halo_fn is not None else 0.0
        t_start = time.perf_counter()
        try:
            with tr.span("solver.run", steps=stop - start_step):
                for step in range(start_step, stop):
                    t = step * self.dt
                    if stream is not None:
                        t_step = time.perf_counter()
                        compute_prev = self.timings.compute_s
                    with tr.span("solver.timestep"):
                        self._one_step(t)
                        for cb in callbacks or ():
                            cb(step, self)
                        sentinel = self.health_sentinel
                        if sentinel is not None and (
                            sentinel.due(step) or step == stop - 1
                        ):
                            # The final step is always checked so a blow-up
                            # in the last partial interval cannot slip into
                            # the returned seismograms unflagged.
                            with tr.span("health.check", step=step):
                                if metrics is not None and step >= metrics_from:
                                    metrics.counter("health.checks").add(1)
                                try:
                                    sentinel.check(self, step)
                                except Exception:
                                    if (
                                        metrics is not None
                                        and step >= metrics_from
                                    ):
                                        metrics.counter(
                                            "health.failures"
                                        ).add(1)
                                    raise
                        if self.receiver_set is not None:
                            cm = self.regions[RegionCode.CRUST_MANTLE]
                            with tr.span("io.seismogram_record") as sp:
                                self.receiver_set.record(
                                    self.solid[RegionCode.CRUST_MANTLE].displ,
                                    cm.ibool,
                                )
                                nbytes = (
                                    len(self.receiver_set.receivers) * 3 * 8
                                    * (self.batch or 1)
                                )
                                sp.add(bytes=nbytes)
                                if metrics is not None and step >= metrics_from:
                                    metrics.counter(
                                        "io.seismogram_bytes"
                                    ).add(nbytes)
                        if track_energy and step % energy_every == 0:
                            energies.append(self._total_kinetic_energy())
                            if metrics is not None and step >= metrics_from:
                                metrics.timeseries(
                                    "solver.kinetic_energy_j"
                                ).append(step, energies[-1])
                    if metrics is not None and step >= metrics_from:
                        metrics.counter("solver.steps").add(1)
                        max_displ = max(
                            (
                                float(np.max(np.abs(self.solid[code].displ)))
                                for code in self.solid_codes
                            ),
                            default=0.0,
                        )
                        metrics.timeseries("solver.max_displacement_m").append(
                            step, max_displ
                        )
                    if stream is not None:
                        comm_now = comm_fn() if comm_fn is not None else 0.0
                        halo_now = halo_fn() if halo_fn is not None else 0.0
                        sentinel = self.health_sentinel
                        rs = self.receiver_set
                        stream.sample(
                            step,
                            time.perf_counter() - t_step,
                            compute_s=self.timings.compute_s - compute_prev,
                            comm_s=comm_now - comm_prev,
                            halo_wait_s=halo_now - halo_prev,
                            seismogram_fill=(
                                rs.step_cursor / rs.n_steps
                                if rs is not None and rs.n_steps
                                else float("nan")
                            ),
                            health_checks=(
                                float(sentinel.checks)
                                if sentinel is not None
                                else float("nan")
                            ),
                            health_peak_m=(
                                sentinel.last_peak_m
                                if sentinel is not None
                                else float("nan")
                            ),
                            health_energy_j=(
                                sentinel.last_energy_j
                                if sentinel is not None
                                else float("nan")
                            ),
                        )
                        comm_prev, halo_prev = comm_now, halo_now
        finally:
            # Crash tolerance: an injected fault (or a real blow-up) must
            # not lose the already-buffered samples — the stream is the
            # post-mortem's first witness.
            if stream is not None:
                stream.flush()
        self.timings.total_s = time.perf_counter() - t_start
        self.timings.steps = stop - start_step
        return SolverResult(
            receivers=self.receiver_set,
            timings=self.timings,
            dt=self.dt,
            n_steps=n_steps,
            energy_history=np.asarray(energies) if track_energy else None,
        )

    def _coupling_span_name(self, solid_code: int) -> str:
        return (
            "coupling.cmb"
            if solid_code == RegionCode.CRUST_MANTLE
            else "coupling.icb"
        )

    def _apply_fluid_coupling(self, force: np.ndarray) -> None:  # repro: hot-loop
        """Add the solid-displacement traction onto a fluid force array."""
        tr = self.tracer
        for solid_code, op in self.couplings:
            with tr.span(self._coupling_span_name(solid_code)):
                op.add_fluid_coupling(force, self.solid[solid_code].displ)

    def _apply_solid_coupling(self, code: int, force: np.ndarray) -> None:  # repro: hot-loop
        """Add the fluid-pressure traction onto one solid force array."""
        tr = self.tracer
        for solid_code, op in self.couplings:
            if solid_code == code and self.fluid is not None:
                with tr.span(self._coupling_span_name(solid_code)):
                    op.add_solid_coupling(force, self.fluid.chi_ddot)

    def _apply_sources(self, code: int, force: np.ndarray, t: float) -> None:  # repro: hot-loop
        """Inject the source terms of one region onto a global force array.

        Batched mode injects each event's sources only into its own force
        slice ``force[b]`` — the same ``np.add.at`` an unbatched run of
        that event performs.
        """
        st = self.regions[code]
        if self.batch is not None:
            for b, region, element, arr, source in self.event_source_terms:
                if region == code:
                    amp = source.amplitude(t)
                    np_ids = st.ibool[element]
                    np.add.at(
                        force[b], np_ids.ravel(),
                        (amp * arr).reshape(-1, 3),
                    )
            return
        for region, element, arr, source in self.source_terms:
            if region == code:
                amp = source.amplitude(t)
                np_ids = st.ibool[element]
                np.add.at(
                    force, np_ids.ravel(),
                    (amp * arr).reshape(-1, 3),
                )

    def _solid_local_force(self, code: int, view) -> np.ndarray:  # repro: hot-loop
        """Local (unassembled) force of one solid region or element subset.

        ``view`` is a :class:`_RegionState` (full region, blocking path) or
        a :class:`_RegionSubset` (overlap path); both expose the same
        sliced attributes, so the two paths run identical elementwise math.
        """
        tr = self.tracer
        f = self.solid[code]
        u_local = self._gather(f.displ, view.ibool)
        correction = None
        if code in self.attenuation:
            with tr.span("kernel.attenuation", flops=view.atten_flops):
                strain = compute_strain(u_local, view.geom, self.basis)
                atten = self.attenuation[code]
                if view.atten_elements is None:
                    atten.update(strain)
                    correction = atten.stress_correction(view.mu)
                else:
                    atten.update_subset(strain, view.atten_elements)
                    correction = atten.stress_correction_subset(
                        view.mu, view.atten_elements
                    )
        with tr.span(
            "kernel.elastic",
            flops=view.elastic_flops,
            gll_points=view.gll_points_count,
        ):
            if view.ti_moduli is not None:
                from ..kernels.anisotropic import compute_forces_elastic_ti

                force_local = compute_forces_elastic_ti(
                    u_local,
                    view.geom,
                    view.ti_moduli,
                    view.ti_frames,
                    self.basis,
                    stress_correction=correction,
                )
            else:
                force_local = compute_forces_elastic(
                    u_local,
                    view.geom,
                    view.lam,
                    view.mu,
                    self.basis,
                    variant=self.params.kernel_variant,
                    stress_correction=correction,
                )
        if self.omega_vector is not None:
            v_local = self._gather(f.veloc, view.ibool)
            force_local += coriolis_local_force(
                v_local, view.rho, view.geom, self.omega_vector
            )
        if view.gravity_g is not None:
            force_local += gravity_local_force(
                u_local,
                view.xyz_m,
                view.rho,
                view.gravity_g,
                view.geom,
                self.basis,
            )
        return force_local

    def _forces_blocking(self, t: float) -> dict[int, np.ndarray]:  # repro: hot-loop
        """Reference schedule: compute everything, then exchange (blocking)."""
        dt = self.dt
        tr = self.tracer
        # ---- Fluid update first (needs only solid displacement). ----
        if self.fluid is not None:
            fl = self.regions[self.fluid_code]
            with tr.span(
                "kernel.acoustic",
                flops=self._acoustic_flops,
                gll_points=self._gll_points[self.fluid_code],
            ):
                chi_local = self._gather(self.fluid.chi, fl.ibool)
                force_local = compute_forces_acoustic(
                    chi_local, fl.geom, 1.0 / fl.rho, self.basis
                )
                force = self._scatter_add(force_local, fl.ibool, fl.nglob)
            self._apply_fluid_coupling(force)
            force = self.assembler(self.fluid_code, force)
            self.fluid.chi_ddot[:] = force / self.mass[self.fluid_code]
            newmark.corrector_scalar(self.fluid.chi_dot, self.fluid.chi_ddot, dt)

        # ---- Solid updates (can use the fresh fluid chi_ddot). ----
        # Phase 1: local force vectors of every solid region.
        solid_forces: dict[int, np.ndarray] = {}
        for code in self.solid_codes:
            st = self.regions[code]
            force_local = self._solid_local_force(code, st)
            force = self._scatter_add(force_local, st.ibool, st.nglob)
            self._apply_solid_coupling(code, force)
            self._apply_sources(code, force, t)
            solid_forces[code] = force
        # Phase 2: cross-rank assembly — one combined message per neighbour
        # when a multi-region assembler is available (the paper's 33%
        # message-count reduction), else per-region.
        if self.multi_assembler is not None and len(solid_forces) > 1:
            solid_forces = self.multi_assembler(solid_forces)
        else:
            for code in solid_forces:
                solid_forces[code] = self.assembler(code, solid_forces[code])
        return solid_forces

    def _forces_overlap(self, t: float) -> dict[int, np.ndarray]:  # repro: hot-loop
        """Overlapped schedule: boundary elements, post, interior, wait.

        Bit-identity with :meth:`_forces_blocking` rests on two facts:

        * interior elements touch no halo point, so the scatter of the
          boundary subset alone already carries the *complete* local
          contribution at every slice-shared point — that partial array is
          what gets sent while interior elements compute;
        * the final local force is re-scattered from the per-element
          contributions in the *original* element order (one ``bincount``
          over the full ``ibool``), so floating-point summation order
          matches the blocking path exactly, and the received neighbour
          contributions are added in the same sorted-rank order the
          blocking exchange uses.
        """
        dt = self.dt
        tr = self.tracer
        ex = self.overlap_exchanger
        # ---- Fluid: boundary pass, post, interior pass, wait. ----
        if self.fluid is not None:
            code = self.fluid_code
            fl = self.regions[code]
            bnd = self._subsets[code]["boundary"]
            inner = self._subsets[code]["interior"]
            with tr.span(
                "kernel.acoustic",
                flops=bnd.acoustic_flops,
                gll_points=bnd.gll_points_count,
            ):
                chi_b = self._gather(self.fluid.chi, bnd.ibool)
                force_b_local = compute_forces_acoustic(
                    chi_b, bnd.geom, bnd.rho_inv, self.basis
                )
                halo_contrib = self._scatter_add(
                    force_b_local, bnd.ibool, fl.nglob
                )
            self._apply_fluid_coupling(halo_contrib)
            pending = ex.post(code, halo_contrib)
            with tr.span(
                "kernel.acoustic",
                flops=inner.acoustic_flops,
                gll_points=inner.gll_points_count,
            ):
                chi_i = self._gather(self.fluid.chi, inner.ibool)
                force_i_local = compute_forces_acoustic(
                    chi_i, inner.geom, inner.rho_inv, self.basis
                )
                # Full-order re-scatter: one bincount over the original
                # ibool keeps the summation order of the blocking path.
                force_local = self._scratch_local[code]
                if self.batch is None:
                    force_local[bnd.idx] = force_b_local
                    force_local[inner.idx] = force_i_local
                else:
                    force_local[:, bnd.idx] = force_b_local
                    force_local[:, inner.idx] = force_i_local
                force = self._scatter_add(force_local, fl.ibool, fl.nglob)
            self._apply_fluid_coupling(force)
            ex.wait(pending, force)
            self.fluid.chi_ddot[:] = force / self.mass[code]
            newmark.corrector_scalar(self.fluid.chi_dot, self.fluid.chi_ddot, dt)

        # ---- Solids: all boundary passes, one merged post, interiors, wait.
        boundary_locals: dict[int, np.ndarray] = {}
        halo_values: dict[int, np.ndarray] = {}
        for code in self.solid_codes:
            st = self.regions[code]
            bnd = self._subsets[code]["boundary"]
            force_b_local = self._solid_local_force(code, bnd)
            boundary_locals[code] = force_b_local
            contrib = self._scatter_add(force_b_local, bnd.ibool, st.nglob)
            self._apply_solid_coupling(code, contrib)
            self._apply_sources(code, contrib, t)
            halo_values[code] = contrib
        pending_solid = ex.post_many(halo_values)
        solid_forces: dict[int, np.ndarray] = {}
        for code in self.solid_codes:
            st = self.regions[code]
            bnd = self._subsets[code]["boundary"]
            inner = self._subsets[code]["interior"]
            force_i_local = self._solid_local_force(code, inner)
            force_local = self._scratch_local[code]
            if self.batch is None:
                force_local[bnd.idx] = boundary_locals[code]
                force_local[inner.idx] = force_i_local
            else:
                force_local[:, bnd.idx] = boundary_locals[code]
                force_local[:, inner.idx] = force_i_local
            force = self._scatter_add(force_local, st.ibool, st.nglob)
            self._apply_solid_coupling(code, force)
            self._apply_sources(code, force, t)
            solid_forces[code] = force
        ex.wait_many(pending_solid, solid_forces)
        return solid_forces

    def _one_step(self, t: float) -> None:  # repro: hot-loop
        dt = self.dt
        tr = self.tracer
        # Predictor on every field.
        with tr.span("solver.newmark_predictor"):
            for code in self.solid_codes:
                f = self.solid[code]
                newmark.predictor(f.displ, f.veloc, f.accel, dt)
            if self.fluid is not None:
                newmark.predictor_scalar(
                    self.fluid.chi, self.fluid.chi_dot, self.fluid.chi_ddot, dt
                )

        t0 = time.perf_counter()
        cpu0 = time.thread_time()
        if self._overlap:
            solid_forces = self._forces_overlap(t)
        else:
            solid_forces = self._forces_blocking(t)
        # Finish the update.
        with tr.span("solver.newmark_corrector", flops=self._newmark_flops):
            for code in self.solid_codes:
                f = self.solid[code]
                f.accel[:] = solid_forces[code] / self.mass[code][:, None]
                if code == RegionCode.CRUST_MANTLE and self.ocean_load is not None:
                    self.ocean_load.apply(f.accel, self.mass[code])
                newmark.corrector(f.veloc, f.accel, dt)
        self.timings.compute_s += time.perf_counter() - t0
        self.timings.compute_cpu_s += time.thread_time() - cpu0

    def total_energy(self) -> float:
        """Total mechanical energy of the coupled system.

        Solid regions: kinetic ``1/2 v^T M v`` plus elastic ``1/2 u^T K u``
        (via the force kernel).  Fluid (potential formulation, u = grad
        chi / rho, p = -chi_ddot): kinetic ``1/2 chi_dot^T K_f chi_dot``
        and compressional ``1/2 chi_ddot^T M_f chi_ddot``.  Conserved (to
        the scheme's O(dt^2) oscillation) once sources stop, *including*
        across the CMB/ICB coupling — the invariant the energy test uses
        to pin the coupling signs.
        """
        total = 0.0
        for code in self.solid_codes:
            st = self.regions[code]
            f = self.solid[code]
            total += 0.5 * float(np.sum(self.mass[code][:, None] * f.veloc**2))
            u_local = self._gather(f.displ, st.ibool)
            if st.ti_moduli is not None:
                from ..kernels.anisotropic import compute_forces_elastic_ti

                ku = compute_forces_elastic_ti(
                    u_local, st.geom, st.ti_moduli, st.ti_frames, self.basis
                )
            else:
                ku = compute_forces_elastic(
                    u_local, st.geom, st.lam, st.mu, self.basis
                )
            total += -0.5 * float(np.sum(u_local * ku))
        if self.fluid is not None:
            fl = self.regions[self.fluid_code]
            chidot_local = self._gather(self.fluid.chi_dot, fl.ibool)
            k_chidot = compute_forces_acoustic(
                chidot_local, fl.geom, 1.0 / fl.rho, self.basis
            )
            total += -0.5 * float(np.sum(chidot_local * k_chidot))
            total += 0.5 * float(
                np.sum(self.mass[self.fluid_code] * self.fluid.chi_ddot**2)
            )
        return total

    def _total_kinetic_energy(self) -> float:
        total = 0.0
        for code in self.solid_codes:
            total += self.solid[code].kinetic_energy(self.mass[code])
        if self.fluid is not None:
            # Fluid kinetic energy in the potential formulation:
            # (1/2) int rho |v|^2 with v = (1/rho) grad(chi_dot); use the
            # mass-matrix proxy (1/2) chi_dot M chi_dot (same decay behaviour).
            total += 0.5 * float(
                np.sum(self.mass[self.fluid_code] * self.fluid.chi_dot**2)
            )
        return total
