"""Seismogram comparison utilities.

SPECFEM3D_GLOBE is validated against semi-analytical normal-mode
seismograms (Section 3); this module provides the standard comparison
metrics used for such validations: relative L2 waveform misfit,
cross-correlation time shifts (phase/dispersion errors), and simple
arrival-time picks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_l2_misfit",
    "time_shift_crosscorrelation",
    "arrival_time",
    "waveform_summary",
]


def relative_l2_misfit(observed: np.ndarray, reference: np.ndarray) -> float:
    """||obs - ref|| / ||ref|| over the whole trace (any shape)."""
    observed = np.asarray(observed, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if observed.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: {observed.shape} vs {reference.shape}"
        )
    denom = np.linalg.norm(reference)
    if denom == 0.0:
        raise ValueError("reference trace is identically zero")
    return float(np.linalg.norm(observed - reference) / denom)


def time_shift_crosscorrelation(
    observed: np.ndarray, reference: np.ndarray, dt: float
) -> float:
    """Best-aligning time shift (s) of ``observed`` relative to ``reference``.

    Positive means the observed trace is late.  Full cross-correlation
    over 1-D traces; sub-sample refinement by parabolic interpolation of
    the correlation peak.
    """
    observed = np.asarray(observed, dtype=np.float64).ravel()
    reference = np.asarray(reference, dtype=np.float64).ravel()
    if observed.size != reference.size:
        raise ValueError("traces must have equal length")
    if dt <= 0:
        raise ValueError("dt must be positive")
    corr = np.correlate(observed, reference, mode="full")
    peak = int(np.argmax(corr))
    lag = peak - (reference.size - 1)
    # Parabolic sub-sample refinement where the peak is interior.
    if 0 < peak < corr.size - 1:
        c0, c1, c2 = corr[peak - 1], corr[peak], corr[peak + 1]
        denom = c0 - 2 * c1 + c2
        if abs(denom) > 1e-300:
            lag += 0.5 * (c0 - c2) / denom
    return float(lag * dt)


def arrival_time(
    trace: np.ndarray, dt: float, threshold: float = 0.05
) -> float | None:
    """First time the |amplitude| exceeds ``threshold`` x peak (STA-free pick).

    Returns None for an all-zero trace.
    """
    trace = np.abs(np.asarray(trace, dtype=np.float64)).ravel()
    peak = trace.max()
    if peak == 0.0:
        return None
    idx = np.argmax(trace >= threshold * peak)
    return float(idx * dt)


def waveform_summary(trace: np.ndarray, dt: float) -> dict:
    """Peak amplitude, RMS, dominant frequency, arrival pick of one trace."""
    trace = np.asarray(trace, dtype=np.float64).ravel()
    if dt <= 0:
        raise ValueError("dt must be positive")
    spectrum = np.abs(np.fft.rfft(trace - trace.mean()))
    freqs = np.fft.rfftfreq(trace.size, dt)
    dominant = float(freqs[np.argmax(spectrum)]) if spectrum.size else 0.0
    return {
        "peak": float(np.abs(trace).max()),
        "rms": float(np.sqrt(np.mean(trace**2))),
        "dominant_frequency_hz": dominant,
        "arrival_s": arrival_time(trace, dt),
    }
