"""Toroidal normal modes of a homogeneous elastic sphere — analytic oracle.

Section 3 of the paper: SPECFEM3D_GLOBE "has been extensively benchmarked
against semi-analytical normal-mode synthetic seismograms".  The cleanest
self-contained analogue of that benchmark is the homogeneous solid sphere,
whose toroidal free oscillations are fully analytic:

* radial eigenfunction  W(r) = j_l(omega r / vs),
* free-surface (zero traction) condition at r = R:
      (l - 1) j_l(x) = x j_{l+1}(x),    x = omega R / vs,
* displacement (degree l, order m = 0):
      u = W(r) * dP_l(cos theta)/d theta * phi_hat.

The test suite initialises the globe solver (with a homogeneous material
override) with an analytic eigenmode and verifies that the SEM oscillates
at the analytic eigenfrequency.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq
from scipy.special import spherical_jn

__all__ = [
    "toroidal_characteristic",
    "toroidal_eigenfrequencies",
    "toroidal_mode_displacement",
    "make_homogeneous",
    "measure_period_zero_crossings",
]


def toroidal_characteristic(l: int, x: np.ndarray | float):
    """The secular function f(x) = (l-1) j_l(x) - x j_{l+1}(x)."""
    if l < 2:
        raise ValueError("toroidal modes need l >= 2 (l=1 is a rotation)")
    x = np.asarray(x, dtype=np.float64)
    return (l - 1) * spherical_jn(l, x) - x * spherical_jn(l + 1, x)


def toroidal_eigenfrequencies(
    l: int, vs_m_s: float, radius_m: float, n_modes: int = 3
) -> np.ndarray:
    """First ``n_modes`` angular eigenfrequencies (rad/s) of degree l.

    Roots are bracketed by scanning the secular function and refined with
    Brent's method; the n-th root is the overtone _nT_l.
    """
    if vs_m_s <= 0 or radius_m <= 0:
        raise ValueError("speed and radius must be positive")
    xs = np.linspace(1e-3, 40.0 + 6.0 * n_modes, 20000)
    fs = toroidal_characteristic(l, xs)
    roots: list[float] = []
    for i in range(xs.size - 1):
        if fs[i] == 0.0:
            roots.append(float(xs[i]))
        elif fs[i] * fs[i + 1] < 0:
            roots.append(
                float(brentq(lambda x: toroidal_characteristic(l, x),
                             xs[i], xs[i + 1]))
            )
        if len(roots) >= n_modes:
            break
    if len(roots) < n_modes:
        raise RuntimeError(f"found only {len(roots)} roots for l={l}")
    return np.asarray(roots[:n_modes]) * vs_m_s / radius_m


def toroidal_mode_displacement(
    coords_km: np.ndarray, l: int, omega: float, vs_m_s: float
) -> np.ndarray:
    """Evaluate the (l, m=0) toroidal eigenmode at Cartesian points (km).

    Returns unit-scaled displacement vectors (the mode amplitude is
    arbitrary).  Currently l = 2 and l = 3 are supported (their Legendre
    derivative is hard-coded; enough for validation).
    """
    coords = np.asarray(coords_km, dtype=np.float64) * 1000.0  # m
    r = np.linalg.norm(coords, axis=-1)
    r_safe = np.where(r > 0, r, 1.0)
    cos_t = np.clip(coords[..., 2] / r_safe, -1.0, 1.0)
    sin_t = np.sqrt(np.maximum(0.0, 1.0 - cos_t**2))
    if l == 2:
        dpl = -3.0 * cos_t * sin_t
    elif l == 3:
        # P3 = (5c^3 - 3c)/2 -> dP3/dtheta = -(15 c^2 - 3)/2 * sin
        dpl = -0.5 * (15.0 * cos_t**2 - 3.0) * sin_t
    else:
        raise ValueError("only l = 2 and l = 3 eigenmodes are implemented")
    w = spherical_jn(l, omega * r / vs_m_s)
    # phi_hat = (-sin phi, cos phi, 0); sin/cos of phi from x, y.
    rho_xy = np.sqrt(coords[..., 0] ** 2 + coords[..., 1] ** 2)
    safe = np.where(rho_xy > 0, rho_xy, 1.0)
    phi_hat = np.stack(
        [-coords[..., 1] / safe, coords[..., 0] / safe,
         np.zeros_like(rho_xy)],
        axis=-1,
    )
    amplitude = np.where(rho_xy > 0, w * dpl, 0.0)
    return amplitude[..., None] * phi_hat


def make_homogeneous(
    mesh_bundle, rho: float = 4500.0, vp: float = 6928.0, vs: float = 4000.0
) -> None:
    """Override a globe mesh's materials with a homogeneous solid.

    Every region becomes the same solid (the outer core's fluid flag is
    overridden), turning the mesh into the homogeneous sphere of the
    normal-mode benchmark.  Modifies the meshes in place.
    """
    if vs <= 0 or vp <= vs or rho <= 0:
        raise ValueError("need rho > 0 and vp > vs > 0 for a solid sphere")
    mu = rho * vs**2
    kappa = rho * vp**2 - 4.0 / 3.0 * mu
    for rmesh in mesh_bundle.regions.values():
        shape = rmesh.ibool.shape
        rmesh.rho = np.full(shape, rho)
        rmesh.mu = np.full(shape, mu)
        rmesh.kappa = np.full(shape, kappa)
        rmesh.q_mu = np.full(shape, 1.0e9)
        rmesh.ti_moduli = None
        rmesh.fluid_override = False


def measure_period_zero_crossings(trace: np.ndarray, dt: float) -> float:
    """Oscillation period from successive same-direction zero crossings.

    Uses linear interpolation at sign changes and averages all available
    full cycles; raises if fewer than three crossings exist.
    """
    trace = np.asarray(trace, dtype=np.float64).ravel()
    if dt <= 0:
        raise ValueError("dt must be positive")
    signs = np.sign(trace)
    crossings = []
    for i in range(trace.size - 1):
        if signs[i] != 0 and signs[i + 1] != 0 and signs[i] != signs[i + 1]:
            # Linear interpolation of the crossing time.
            frac = trace[i] / (trace[i] - trace[i + 1])
            crossings.append((i + frac) * dt)
    if len(crossings) < 3:
        raise ValueError(
            f"need >= 3 zero crossings to measure a period, got {len(crossings)}"
        )
    crossings = np.asarray(crossings)
    # Alternating crossings are half-periods apart.
    half_periods = np.diff(crossings)
    return 2.0 * float(np.mean(half_periods))
