"""CLI of the static analyzer: ``python -m repro.analysis <command>``.

Commands
--------
``check PATH... [--format text|json|sarif] [--rules R1,R3]
[--baseline FILE | --no-baseline] [--report FILE] [--sarif FILE]
[--diff REF]``
    Run the rule pack; exit 1 if any unsuppressed finding remains.
    The baseline is auto-discovered (nearest ``.repro-analysis-
    baseline.json`` at or above the first path) unless overridden.
    ``--diff REF`` restricts *reporting* to files changed since the
    git ref (the fast PR path) while the whole-program call graph is
    still built over every file, so interprocedural findings on a
    changed file stay complete.  ``--sarif FILE`` writes a SARIF
    2.1.0 log for GitHub code scanning regardless of ``--format``.
``rules``
    List registered rule ids and titles.
``explain RULE``
    Print one rule's full rationale.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from .static import REGISTRY, Baseline, check_paths, to_sarif, validate_sarif


def _diff_files(ref: str, anchor: Path) -> set[str] | None:
    """Files changed since ``ref``, as absolute paths (deleted excluded).

    Returns None when ``anchor`` is not inside a git work tree or the
    ref is unknown — the caller falls back to a full run, which is the
    safe direction (over-reporting, never under-reporting).
    """
    probe = anchor if anchor.is_dir() else anchor.parent
    try:
        top = subprocess.run(
            ["git", "-C", str(probe), "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        out = subprocess.run(
            ["git", "-C", top, "diff", "--name-only", "--diff-filter=d",
             ref, "--", "*.py"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    return {
        (Path(top) / line).resolve().as_posix()
        for line in out.splitlines()
        if line.strip()
    }


def _cmd_check(args: argparse.Namespace) -> int:
    baseline = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline = Baseline.load(args.baseline)
        else:
            baseline = Baseline.discover(args.paths[0])
    rule_ids = args.rules.split(",") if args.rules else None
    select: set[str] | None = None
    if args.diff is not None:
        select = _diff_files(args.diff, Path(args.paths[0]).resolve())
        if select is None:
            print(
                f"warning: cannot diff against {args.diff!r} "
                f"(not a git tree or unknown ref); checking everything",
                file=sys.stderr,
            )
    try:
        report = check_paths(
            [Path(p) for p in args.paths],
            baseline=baseline,
            rule_ids=rule_ids,
            select=select,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n")
    if args.sarif or args.format == "sarif":
        doc = to_sarif(report)
        problems = validate_sarif(doc)
        if problems:  # pragma: no cover - guards future exporter edits
            for p in problems:
                print(f"error: invalid SARIF produced: {p}", file=sys.stderr)
            return 2
        text = json.dumps(doc, indent=2, sort_keys=True)
        if args.sarif:
            Path(args.sarif).write_text(text + "\n")
        if args.format == "sarif":
            print(text)
    if args.format == "json":
        print(report.to_json())
    elif args.format == "text":
        for finding in report.findings:
            print(finding)
        scope = (
            f"{len(select)} changed file(s)" if select is not None else
            f"{report.files_checked} file(s)"
        )
        print(
            f"{len(report.findings)} finding(s) in {scope} "
            f"({report.suppressed} pragma-suppressed, "
            f"{report.baselined} baselined)"
        )
    return 0 if report.clean else 1


def _cmd_rules(_args: argparse.Namespace) -> int:
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        scope = ", ".join(rule.scope_dirs + rule.scope_suffixes) or "all files"
        print(f"{rule_id}  {rule.title}  [{scope}]")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    rule = REGISTRY.get(args.rule)
    if rule is None:
        print(
            f"error: unknown rule {args.rule!r}; known: {sorted(REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    print(f"{rule.id}: {rule.title}")
    print()
    print(rule.rationale)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analyzer for the repo's SPMD and numerical "
        "invariants.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run the rule pack over paths")
    check.add_argument("paths", nargs="+", help="files or directories")
    check.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="findings output format",
    )
    check.add_argument(
        "--rules", default=None, help="comma-separated subset of rule ids"
    )
    check.add_argument(
        "--baseline", default=None, help="explicit baseline file path"
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    check.add_argument(
        "--report", default=None,
        help="also write the JSON report to this file",
    )
    check.add_argument(
        "--sarif", default=None,
        help="also write a SARIF 2.1.0 log to this file",
    )
    check.add_argument(
        "--diff", default=None, metavar="REF",
        help="report only findings in files changed since this git ref "
        "(the project index still covers everything)",
    )
    check.set_defaults(func=_cmd_check)

    rules = sub.add_parser("rules", help="list registered rules")
    rules.set_defaults(func=_cmd_rules)

    explain = sub.add_parser("explain", help="print one rule's rationale")
    explain.add_argument("rule", help="rule id, e.g. R1")
    explain.set_defaults(func=_cmd_explain)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
