"""Runtime comm sanitizer: dynamic checking of the SPMD message discipline.

The static rules in :mod:`repro.analysis.static` prove properties of the
*source*; this module checks the *execution*.  A :class:`SanitizerComm`
wraps one rank's :class:`~repro.parallel.comm.VirtualComm` — the same
seam :class:`~repro.chaos.faults.ChaosComm` uses — and reports every
message and request to a cluster-wide :class:`CommSanitizer`.  At the
end of the run (``VirtualCluster.run`` finalizes the sanitizer even when
a rank failed) the collected evidence becomes a :class:`SanitizerReport`:

* **unmatched-send** — a posted message nobody ever received; on real
  MPI this is buffered traffic that silently distorts timing (or, for
  rendezvous-size payloads, a hang).
* **leaked-request** — an ``isend``/``irecv`` handle that never reached
  ``wait``/``waitall``; the runtime analogue of static rule R1.
* **double-wait** — one request completed twice; legal on our idempotent
  virtual requests but an error against a real ``MPI_Request``.
* **tag-collision / tag-reuse** — two *simultaneously outstanding*
  requests on one rank with identical (op, peer, tag): their completions
  can match either message, so the exchange is only correct by luck.
  Blocking sends are exempt — MPI's non-overtaking rule makes same-tag
  back-to-back blocking traffic well defined.
* **deadlock / timeout** — on a receive deadline expiry the sanitizer
  snapshots who-waits-on-whom and reports the wait-for cycle (if any)
  instead of leaving a bare ``RankTimeoutError``.

Enable with ``VirtualCluster(sanitize=True)`` or
``run_distributed_simulation(..., sanitize=True)``; when chaos faults
are active the chaos wrapper sits *outside* the sanitizer, so injected
drops and duplicates show up as the protocol violations they are.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

import numpy as np

from ..parallel import tags
from ..parallel.comm import RecvRequest, Request
from ..parallel.errors import RankTimeoutError

__all__ = [
    "CommSanitizer",
    "CommSanitizerError",
    "SanitizerComm",
    "SanitizerFinding",
    "SanitizerReport",
]


class CommSanitizerError(RuntimeError):
    """Raised by :meth:`SanitizerReport.raise_if_findings` on a dirty run."""


@dataclass
class SanitizerFinding:
    """One protocol violation observed during a sanitized run."""

    kind: str
    rank: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] rank {self.rank}: {self.detail}"


@dataclass
class SanitizerReport:
    """Finalized outcome of one sanitized run."""

    findings: list[SanitizerFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def kinds(self) -> set[str]:
        return {f.kind for f in self.findings}

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "findings": [
                {"kind": f.kind, "rank": f.rank, "detail": f.detail}
                for f in self.findings
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def raise_if_findings(self) -> None:
        if self.findings:
            lines = "\n".join(f"  {f}" for f in self.findings)
            raise CommSanitizerError(
                f"comm sanitizer found {len(self.findings)} violation(s):\n"
                f"{lines}"
            )


class CommSanitizer:
    """Cluster-wide recorder of message and request lifecycles.

    One instance is shared by all ranks' :class:`SanitizerComm` wrappers;
    every method is thread-safe.  ``finalize()`` is idempotent and turns
    the collected state into a :class:`SanitizerReport`.
    """

    def __init__(self, size: int):
        self.size = size
        self._lock = threading.Lock()
        #: (src, dst, tag) -> number of sent-but-unreceived messages.
        self._in_flight: dict[tuple[int, int, int], int] = {}
        #: request id -> lifecycle record.
        self._requests: dict[int, dict] = {}
        self._next_request_id = 0
        #: rank -> (peer, tag) it is currently blocked receiving on.
        self._waiting: dict[int, tuple[int, int]] = {}
        self._findings: list[SanitizerFinding] = []
        self._report: SanitizerReport | None = None

    # -- recording ----------------------------------------------------------

    def _add_finding(self, kind: str, rank: int, detail: str) -> None:
        # Called with the lock held.
        self._findings.append(SanitizerFinding(kind=kind, rank=rank, detail=detail))

    def on_send(self, rank: int, dest: int, tag: int) -> None:
        """A message was posted (blocking send or isend)."""
        key = (rank, dest, tag)
        with self._lock:
            self._in_flight[key] = self._in_flight.get(key, 0) + 1

    def on_recv_complete(self, rank: int, source: int, tag: int) -> None:
        """A receive matched: the message leaves the in-flight set."""
        key = (source, rank, tag)
        with self._lock:
            n = self._in_flight.get(key, 0)
            if n <= 1:
                self._in_flight.pop(key, None)
            else:
                self._in_flight[key] = n - 1

    def on_request(self, rank: int, op: str, peer: int, tag: int) -> int:
        """Register a non-blocking request; returns its tracking id.

        Two simultaneously outstanding requests with the same signature
        are ambiguous — either completion can match either message — so
        the second registration is a finding.
        """
        with self._lock:
            for rec in self._requests.values():
                if (
                    not rec["completed"]
                    and rec["rank"] == rank
                    and rec["op"] == op
                    and rec["peer"] == peer
                    and rec["tag"] == tag
                ):
                    kind = "tag-collision" if op == "irecv" else "tag-reuse"
                    self._add_finding(
                        kind,
                        rank,
                        f"{op}(peer={peer}, tag={tag}) posted while an "
                        f"identical request is still outstanding",
                    )
                    break
            req_id = self._next_request_id
            self._next_request_id += 1
            self._requests[req_id] = {
                "rank": rank,
                "op": op,
                "peer": peer,
                "tag": tag,
                "waited": False,
                "completed": False,
            }
            return req_id

    def on_wait(self, req_id: int, rank: int) -> None:
        """A wait started on a tracked request (double-wait check)."""
        with self._lock:
            rec = self._requests.get(req_id)
            if rec is None:
                return
            if rec["completed"]:
                self._add_finding(
                    "double-wait",
                    rank,
                    f"{rec['op']}(peer={rec['peer']}, tag={rec['tag']}) "
                    f"waited on after it already completed",
                )
            rec["waited"] = True

    def on_request_complete(self, req_id: int) -> None:
        """A wait on a tracked request returned successfully."""
        with self._lock:
            rec = self._requests.get(req_id)
            if rec is not None:
                rec["completed"] = True

    def on_wait_begin(self, rank: int, peer: int, tag: int) -> None:
        with self._lock:
            self._waiting[rank] = (peer, tag)

    def on_wait_end(self, rank: int) -> None:
        with self._lock:
            self._waiting.pop(rank, None)

    def on_timeout(self, rank: int, peer: int, tag: int) -> None:
        """A receive deadline expired: snapshot the wait-for graph.

        Walks rank -> rank-it-waits-on edges from the timed-out rank; a
        revisit closes a cycle (a true deadlock), otherwise the chain
        ends at a rank that is computing (a lost message or slow peer).
        """
        with self._lock:
            edges = dict(self._waiting)
            edges[rank] = (peer, tag)
            chain = [rank]
            seen = {rank}
            current = peer
            while current in edges and current not in seen:
                chain.append(current)
                seen.add(current)
                current = edges[current][0]
            if current in seen:
                chain.append(current)
                cycle = " -> ".join(
                    f"rank {r} (recv tag {edges[r][1]} from {edges[r][0]})"
                    for r in chain
                    if r in edges
                )
                self._add_finding(
                    "deadlock",
                    rank,
                    f"wait-for cycle: {cycle}",
                )
            else:
                chain_s = " -> ".join(str(r) for r in chain + [current])
                self._add_finding(
                    "timeout",
                    rank,
                    f"recv(source={peer}, tag={tag}) timed out; wait chain "
                    f"{chain_s} ends at a non-waiting rank (lost message or "
                    f"slow peer, not a cycle)",
                )

    # -- finalization -------------------------------------------------------

    def finalize(self) -> SanitizerReport:
        """Turn the collected evidence into a report (idempotent)."""
        with self._lock:
            if self._report is not None:
                return self._report
            findings = list(self._findings)
            for (src, dst, tag), count in sorted(self._in_flight.items()):
                findings.append(
                    SanitizerFinding(
                        kind="unmatched-send",
                        rank=src,
                        detail=(
                            f"{count} message(s) to rank {dst} with tag "
                            f"{tag} never received"
                        ),
                    )
                )
            for rec in self._requests.values():
                if rec["completed"]:
                    continue
                how = (
                    "wait never returned" if rec["waited"] else "never waited on"
                )
                findings.append(
                    SanitizerFinding(
                        kind="leaked-request",
                        rank=rec["rank"],
                        detail=(
                            f"{rec['op']}(peer={rec['peer']}, "
                            f"tag={rec['tag']}) {how}"
                        ),
                    )
                )
            self._report = SanitizerReport(findings=findings)
            return self._report


class _SanitizedRequest(Request):
    """Tracked wrapper around a send/recv request handle."""

    __slots__ = ("_inner", "_sanitizer", "_req_id", "_rank")

    def __init__(
        self,
        inner: Request,
        sanitizer: CommSanitizer,
        req_id: int,
        rank: int,
    ):
        self._inner = inner
        self._sanitizer = sanitizer
        self._req_id = req_id
        self._rank = rank

    def wait(self, timeout: float | None = None):
        self._sanitizer.on_wait(self._req_id, self._rank)
        result = self._inner.wait(timeout)
        self._sanitizer.on_request_complete(self._req_id)
        return result

    @property
    def done(self) -> bool:
        return self._inner.done


class SanitizerComm:
    """Protocol-checking wrapper around one rank's ``VirtualComm``.

    Point-to-point traffic and request lifecycles are reported to the
    shared :class:`CommSanitizer`; collectives, accounting, and
    attributes (``rank``, ``size``, ``stats``) delegate untouched.
    Requests returned by ``isend``/``irecv`` are wrapped so their waits
    are tracked; blocking receives (and request waits, which funnel
    through ``_complete_recv``) update the wait-for graph used in the
    deadlock report.
    """

    def __init__(self, comm, sanitizer: CommSanitizer):
        self._comm = comm
        self._sanitizer = sanitizer

    def __getattr__(self, name: str):
        return getattr(self._comm, name)

    # -- point to point ------------------------------------------------------

    def send(self, dest: int, payload, tag: int = tags.DEFAULT) -> None:
        self._sanitizer.on_send(self._comm.rank, dest, tag)
        return self._comm.send(dest, payload, tag=tag)

    def isend(self, dest: int, payload, tag: int = tags.DEFAULT) -> Request:
        rank = self._comm.rank
        req_id = self._sanitizer.on_request(rank, "isend", dest, tag)
        self._sanitizer.on_send(rank, dest, tag)
        inner = self._comm.isend(dest, payload, tag=tag)
        return _SanitizedRequest(inner, self._sanitizer, req_id, rank)

    def recv(
        self, source: int, tag: int = tags.DEFAULT, timeout: float | None = None
    ) -> np.ndarray:
        return self._complete_recv(source, tag, timeout)

    def irecv(self, source: int, tag: int = tags.DEFAULT) -> Request:
        rank = self._comm.rank
        req_id = self._sanitizer.on_request(rank, "irecv", source, tag)
        # Bound to *this* wrapper: the eventual wait() funnels through
        # _complete_recv below, so the receive is accounted exactly once.
        inner = RecvRequest(self, source, tag)
        return _SanitizedRequest(inner, self._sanitizer, req_id, rank)

    def _complete_recv(
        self, source: int, tag: int, timeout: float | None
    ) -> np.ndarray:
        rank = self._comm.rank
        self._sanitizer.on_wait_begin(rank, source, tag)
        try:
            data = self._comm._complete_recv(source, tag, timeout)
        except RankTimeoutError:
            self._sanitizer.on_timeout(rank, source, tag)
            raise
        finally:
            self._sanitizer.on_wait_end(rank)
        self._sanitizer.on_recv_complete(rank, source, tag)
        return data

    def sendrecv(
        self, dest: int, payload, source: int, tag: int = tags.DEFAULT
    ) -> np.ndarray:
        self.send(dest, payload, tag=tag)
        return self.recv(source, tag)

    def waitall(
        self, requests: list[Request], timeout: float | None = None
    ) -> list[np.ndarray | None]:
        return [req.wait(timeout) for req in requests]
