"""Domain-specific static analyzer (stdlib-``ast``, dependency-free).

Public surface re-exported from :mod:`.core`, :mod:`.rules` and
:mod:`.sarif`; the CLI lives in :mod:`repro.analysis.__main__`
(``python -m repro.analysis check src``).  See ``docs/analysis.md`` for
the rule catalog (R1–R9), the pragma/baseline workflow and the
SARIF/CI integration.
"""

from .core import (
    REGISTRY,
    Baseline,
    FileContext,
    Finding,
    FunctionInfo,
    Project,
    ProjectRule,
    Report,
    Rule,
    check_paths,
    normalize_path,
    register,
)
from . import rules as _rules  # noqa: F401  (populates REGISTRY on import)
from .sarif import to_sarif, validate_sarif

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "FunctionInfo",
    "Project",
    "ProjectRule",
    "REGISTRY",
    "Report",
    "Rule",
    "check_paths",
    "normalize_path",
    "register",
    "to_sarif",
    "validate_sarif",
]
