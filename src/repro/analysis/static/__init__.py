"""Domain-specific static analyzer (stdlib-``ast``, dependency-free).

Public surface re-exported from :mod:`.core` and :mod:`.rules`; the CLI
lives in :mod:`repro.analysis.__main__` (``python -m repro.analysis
check src``).  See ``docs/architecture.md`` for the rule catalog and
the pragma/baseline workflow.
"""

from .core import (
    REGISTRY,
    Baseline,
    FileContext,
    Finding,
    Report,
    Rule,
    check_paths,
    normalize_path,
    register,
)
from . import rules as _rules  # noqa: F401  (populates REGISTRY on import)

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "REGISTRY",
    "Report",
    "Rule",
    "check_paths",
    "normalize_path",
    "register",
]
