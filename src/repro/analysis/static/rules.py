"""The rule pack: this codebase's SPMD and numerical invariants.

Each rule encodes a discipline the paper's production runs depended on
(see the rationale strings, surfaced by ``python -m repro.analysis
explain RULE``).  Rules are heuristic by design — they over-approximate
where the alternative is missing a real bug, and every false positive
has a recorded escape hatch (pragma or baseline entry).
"""

from __future__ import annotations

import ast

from .core import (
    COLLECTIVE_ATTRS,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    blocking_call_reason,
    register,
    walk_function_body,
)

__all__ = [
    "AsyncHygieneRule",
    "BatchedDispatchRule",
    "BroadExceptRule",
    "DeterminismRule",
    "HotLoopAllocRule",
    "LeakedRequestRule",
    "MagicTagRule",
    "SPMDDivergenceRule",
    "StateLifecycleRule",
]


def _attr_chain(node: ast.AST) -> str | None:
    """Dotted source text of a Name/Attribute chain (``np.random.rand``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _contains_wait_site(node: ast.AST, name: str) -> bool:
    """Does the subtree call ``name.wait(...)``?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "wait"
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == name
        ):
            return True
    return False


@register
class LeakedRequestRule(Rule):
    """R1: every isend/irecv request must reach a wait on all paths."""

    id = "R1"
    title = "leaked non-blocking request"
    rationale = (
        "An irecv whose request is never waited silently drops a halo "
        "contribution — the mass-matrix or force assembly is then wrong "
        "on exactly one slice boundary, which surfaces only as a flaky "
        "bit-identity failure.  An unwaited isend is legal-looking code "
        "that deadlocks on a real MPI once payloads cross the rendezvous "
        "threshold.  The rule flags requests whose result is discarded, "
        "never used, or waited only on some control-flow paths — "
        "including requests that cross function boundaries: a helper "
        "that *returns* an isend result makes its callers responsible "
        "(a discarded call to it is a leak), and a request stashed on "
        "``self`` must be waited somewhere in its class.  Handles that "
        "escape into containers or other objects are assumed managed "
        "by their new owner."
    )
    scope_dirs = ("parallel", "solver")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            how = self._request_source(ctx, node)
            if how is None:
                continue
            parent = ctx.parent(node)
            if isinstance(parent, ast.Expr):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"result of {how} is discarded — the request can "
                        f"never reach a wait",
                    )
                )
                continue
            if (
                isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)
            ):
                found = self._check_named(
                    ctx, node, parent, parent.targets[0].id, how
                )
                if found is not None:
                    findings.append(found)
                continue
            stashed = self._self_stash_attr(ctx, node, parent)
            if stashed is not None and not self._class_waits_attr(
                ctx, node, stashed
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"request from {how} is stashed on self.{stashed} "
                        f"but no method of the class ever waits "
                        f"self.{stashed}",
                    )
                )
            # Any other context (call argument, list element, non-self
            # attribute store, tuple unpack) hands the request to other
            # code; the new owner is responsible.
        return findings

    def _request_source(self, ctx: FileContext, node: ast.Call) -> str | None:
        """How this call produces a request, or None if it doesn't.

        Either the isend/irecv primitive itself, or (via the project
        call graph) a helper that transitively returns a request.
        """
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("isend", "irecv"):
            return f"{node.func.attr}()"
        if ctx.project is not None:
            for qual in ctx.project.call_targets(node):
                info = ctx.project.functions.get(qual)
                if info is not None and info.returns_request:
                    return f"{info.short}() (returns an isend/irecv request)"
        return None

    def _self_stash_attr(
        self, ctx: FileContext, node: ast.Call, parent: ast.AST | None
    ) -> str | None:
        """The ``self.<attr>`` a request lands on, or None.

        Covers ``self.req = isend(...)`` and
        ``self.pending.append(isend(...))``.
        """
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Attribute)
            and isinstance(parent.targets[0].value, ast.Name)
            and parent.targets[0].value.id == "self"
        ):
            return parent.targets[0].attr
        if (
            isinstance(parent, ast.Call)
            and node in parent.args
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr == "append"
            and isinstance(parent.func.value, ast.Attribute)
            and isinstance(parent.func.value.value, ast.Name)
            and parent.func.value.value.id == "self"
        ):
            return parent.func.value.attr
        return None

    def _class_waits_attr(
        self, ctx: FileContext, node: ast.AST, attr: str
    ) -> bool:
        """Does the enclosing class wait ``self.<attr>`` anywhere?"""
        cls: ast.AST | None = ctx.parent(node)
        while cls is not None and not isinstance(cls, ast.ClassDef):
            cls = ctx.parent(cls)
        if cls is None:
            return False

        def _mentions_self_attr(tree: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Attribute)
                and sub.attr == attr
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                for sub in ast.walk(tree)
            )

        for sub in ast.walk(cls):
            if isinstance(sub, ast.Call):
                func = sub.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else ""
                )
                if "wait" not in name:
                    continue
                if isinstance(func, ast.Attribute) and \
                        _mentions_self_attr(func.value):
                    return True  # self.attr.wait() / self.attr[x].wait()
                if any(_mentions_self_attr(arg) for arg in sub.args):
                    return True  # waitall(self.attr)-style
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                # for r in self.attr: ... r.wait() ...
                if _mentions_self_attr(sub.iter) and any(
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "wait"
                    for stmt in sub.body
                    for inner in ast.walk(stmt)
                ):
                    return True
        return False

    def _check_named(
        self,
        ctx: FileContext,
        call: ast.Call,
        assign: ast.Assign,
        name: str,
        how: str,
    ) -> Finding | None:
        scope: ast.AST = ctx.enclosing_function(call) or ctx.tree
        used = False
        for sub in ast.walk(scope):
            if not (
                isinstance(sub, ast.Name)
                and sub.id == name
                and isinstance(sub.ctx, ast.Load)
            ):
                continue
            used = True
            sub_parent = ctx.parent(sub)
            is_wait = (
                isinstance(sub_parent, ast.Attribute)
                and sub_parent.attr == "wait"
                and isinstance(ctx.parent(sub_parent), ast.Call)
            )
            if not is_wait:
                # Escapes: appended to a pending list, passed to
                # waitall/wait_many, returned — assume managed.
                return None
        if not used:
            return self.finding(
                ctx,
                call,
                f"request {name!r} from {how} is never waited on",
            )
        if self._covered_after(ctx, assign, name):
            return None
        return self.finding(
            ctx,
            call,
            f"request {name!r} from {how} is not waited on "
            f"all control-flow paths",
        )

    def _covered_after(
        self, ctx: FileContext, stmt: ast.stmt, name: str
    ) -> bool:
        """Is a wait guaranteed on every path after ``stmt``?

        Climbs enclosing blocks: statements following ``stmt`` in its
        block must cover, or fall-through continues into the parent
        block.  Loops never guarantee execution of their body.
        """
        current: ast.stmt = stmt
        while True:
            parent = ctx.parent(current)
            if parent is None:
                return False
            block: list[ast.stmt] | None = None
            for _field, value in ast.iter_fields(parent):
                if isinstance(value, list) and current in value:
                    block = value
                    break
            if block is None:
                return False
            rest = block[block.index(current) + 1 :]
            if self._seq_covers(rest, name):
                return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if not isinstance(parent, ast.stmt):
                return False
            current = parent

    def _seq_covers(self, stmts: list[ast.stmt], name: str) -> bool:
        return any(self._stmt_covers(s, name) for s in stmts)

    def _stmt_covers(self, stmt: ast.stmt, name: str) -> bool:
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, ast.If):
            return bool(
                stmt.orelse
                and self._seq_covers(stmt.body, name)
                and self._seq_covers(stmt.orelse, name)
            )
        if isinstance(stmt, ast.Try):
            return self._seq_covers(stmt.body, name) or self._seq_covers(
                stmt.finalbody, name
            )
        if isinstance(stmt, ast.With):
            return self._seq_covers(stmt.body, name)
        if isinstance(stmt, (ast.For, ast.While)):
            return False  # the body may execute zero times
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return False
        return _contains_wait_site(stmt, name)


@register
class MagicTagRule(Rule):
    """R2: comm tags come from parallel/tags.py, and channels don't collide."""

    id = "R2"
    title = "magic message tag"
    rationale = (
        "Tag values are the wire-level namespace of the halo protocol: a "
        "literal 2000 at one call site and a literal 2000 at another are "
        "an invisible coupling, and two channels closer than one region "
        "block silently cross-match messages.  All tags must be named "
        "constants from repro/parallel/tags.py (or region_tag() over "
        "them); the rule additionally re-derives the registry from that "
        "file's AST and rejects bases closer than TAG_BLOCK."
    )
    scope_dirs = ("parallel", "solver")

    #: positional index of the ``tag`` parameter per comm method.
    TAG_ARG_INDEX = {"send": 2, "isend": 2, "recv": 1, "irecv": 1, "sendrecv": 3}

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.path.name == "tags.py":
            return self._check_registry(ctx)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.TAG_ARG_INDEX
            ):
                continue
            tag_expr: ast.expr | None = None
            for kw in node.keywords:
                if kw.arg == "tag":
                    tag_expr = kw.value
            if tag_expr is None:
                index = self.TAG_ARG_INDEX[node.func.attr]
                if len(node.args) > index:
                    tag_expr = node.args[index]
            if tag_expr is None:
                continue
            for sub in ast.walk(tag_expr):
                if (
                    isinstance(sub, ast.Constant)
                    and isinstance(sub.value, int)
                    and not isinstance(sub.value, bool)
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"magic tag literal {sub.value} in "
                            f"{node.func.attr}() — use a constant from "
                            f"parallel/tags.py",
                        )
                    )
                    break
        return findings

    def _check_registry(self, ctx: FileContext) -> list[Finding]:
        """Re-derive the tag registry and verify channel separation."""
        consts: dict[str, tuple[int, ast.stmt]] = {}
        for stmt in ctx.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
                and not isinstance(stmt.value.value, bool)
            ):
                consts[stmt.targets[0].id] = (stmt.value.value, stmt)
        block = consts.get("TAG_BLOCK", (1000, None))[0]
        bases = sorted(
            ((v, name, stmt) for name, (v, stmt) in consts.items()
             if name != "TAG_BLOCK"),
        )
        findings: list[Finding] = []
        for (va, na, _sa), (vb, nb, sb) in zip(bases, bases[1:]):
            if vb - va < block:
                findings.append(
                    self.finding(
                        ctx,
                        sb,
                        f"tag channels {na}={va} and {nb}={vb} are closer "
                        f"than TAG_BLOCK={block}: region offsets would "
                        f"collide in tag space",
                    )
                )
        return findings


@register
class HotLoopAllocRule(Rule):
    """R3: no array allocation inside time-step-loop functions."""

    id = "R3"
    title = "allocation in time-step loop"
    rationale = (
        "The paper's kernels run ~50000 times per simulation; a fresh "
        "np.zeros/np.empty/np.concatenate per call turns into allocator "
        "traffic and page faults that dominate at scale, and a dtype-"
        "less np.empty silently defaults to float64 on one platform and "
        "whatever numpy decides on another.  Functions on the time-step "
        "path carry a `# repro: hot-loop` marker on their def line (the "
        "rule insists every compute_forces* kernel entry point does); "
        "inside them, array allocation and list-append accumulation are "
        "flagged — preallocate in __init__ and fill in place.  One "
        "sanctioned pragma case: the event-batched kernel branches "
        "(docs/batching.md) np.empty their batched OUTPUT before the "
        "per-event sweep — the unbatched path's einsum allocates its "
        "result the same way, so the explicit form is no extra traffic, "
        "and it must carry a dtype (np.empty_like needs no pragma)."
    )
    scope_dirs = ("kernels",)
    scope_suffixes = ("solver/solver.py",)

    ALLOC_ATTRS = ("zeros", "empty", "concatenate")
    GATHER_ATTRS = ("concatenate", "stack", "array")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        in_kernels = "kernels" in ctx.path.parts[:-1]
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            hot = func.lineno in ctx.hot_lines
            if in_kernels and func.name.startswith("compute_forces") and not hot:
                findings.append(
                    self.finding(
                        ctx,
                        func,
                        f"kernel entry point {func.name}() must carry a "
                        f"`# repro: hot-loop` marker on its def line",
                    )
                )
            if hot:
                findings.extend(self._check_hot(ctx, func))
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _attr_chain(node.func) in ("np.empty", "numpy.empty")
                and len(node.args) < 2
                and not any(kw.arg == "dtype" for kw in node.keywords)
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "np.empty() without an explicit dtype — the field "
                        "precision must be stated, not defaulted",
                    )
                )
        return findings

    def _check_hot(self, ctx: FileContext, func: ast.AST) -> list[Finding]:
        findings: list[Finding] = []
        list_names: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.List)
                and not node.value.elts
            ):
                list_names.add(node.targets[0].id)
        gathered: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and _attr_chain(node.func) in {
                f"np.{a}" for a in self.GATHER_ATTRS
            }:
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name):
                            gathered.add(sub.id)
        name = getattr(func, "name", "<lambda>")
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain in {f"np.{a}" for a in self.ALLOC_ATTRS} or chain in {
                f"numpy.{a}" for a in self.ALLOC_ATTRS
            }:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{chain}() allocates inside time-step-loop "
                        f"function {name}() — preallocate and fill in "
                        f"place",
                    )
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in list_names
                and node.func.value.id in gathered
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"list-append accumulation into an array inside "
                        f"time-step-loop function {name}()",
                    )
                )
        return findings


@register
class DeterminismRule(Rule):
    """R4: no unseeded randomness or wall-clock reads in deterministic paths."""

    id = "R4"
    title = "non-determinism in deterministic path"
    rationale = (
        "Bit-identity between the blocking and overlapped schedules — "
        "and between a run and its restart — is a load-bearing test "
        "oracle here, as it was for the paper's validation.  Global-"
        "state RNG (np.random.rand, random.random) and wall-clock reads "
        "(time.time, datetime.now) make results depend on call order "
        "and machine time.  Mesh, model, kernel, and solver code must "
        "use an explicitly seeded np.random.default_rng(seed) and take "
        "clocks as injected parameters.  The serving tier is in scope "
        "too: its content-addressed cache keys must never fold in "
        "wall-clock or RNG state (latency timing uses the monotonic "
        "time.perf_counter, which is allowed)."
    )
    scope_dirs = ("mesh", "kernels", "solver", "model", "service")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            if chain.startswith(("np.random.", "numpy.random.")):
                leaf = chain.rsplit(".", 1)[1]
                seeded = leaf == "default_rng" and (node.args or node.keywords)
                if not seeded:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{chain}() in a deterministic path — use a "
                            f"seeded np.random.default_rng(seed)",
                        )
                    )
            elif chain.startswith("random."):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"stdlib {chain}() uses global RNG state — use a "
                        f"seeded np.random.default_rng(seed)",
                    )
                )
            elif chain in ("time.time", "datetime.now", "datetime.utcnow",
                           "datetime.datetime.now", "datetime.datetime.utcnow"):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"wall-clock read {chain}() in a deterministic "
                        f"path — inject timestamps from the caller",
                    )
                )
        return findings


@register
class BroadExceptRule(Rule):
    """R5: no broad except that swallows the typed error hierarchy."""

    id = "R5"
    title = "broad exception swallowed"
    rationale = (
        "The parallel/campaign/chaos layers communicate failure through "
        "a typed hierarchy (RankFailedError, NumericalHealthError, "
        "CheckpointCorruptionError, ConfigError) that retry policies "
        "and drills dispatch on.  A bare `except:` or an `except "
        "Exception:` that does not re-raise collapses that hierarchy — "
        "a genuine rank death gets retried like a transient, or a "
        "corrupted checkpoint gets reported as success.  Handlers must "
        "catch typed errors, or re-raise (possibly wrapped) what they "
        "catch.  The service HTTP boundary is in scope: it maps *typed* "
        "failures to status codes and lets unexpected bugs surface "
        "instead of turning them all into opaque 500s."
    )
    scope_dirs = ("parallel", "campaign", "chaos", "service")

    BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "bare `except:` swallows the typed error "
                        "hierarchy (and KeyboardInterrupt)",
                    )
                )
                continue
            names = self._type_names(node.type)
            broad = [n for n in names if n in self.BROAD]
            if not broad:
                continue
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue  # re-raised (possibly wrapped): hierarchy intact
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"`except {broad[0]}` without re-raise swallows the "
                    f"typed error hierarchy",
                )
            )
        return findings

    def _type_names(self, node: ast.expr) -> list[str]:
        if isinstance(node, ast.Tuple):
            names: list[str] = []
            for elt in node.elts:
                names.extend(self._type_names(elt))
            return names
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Attribute):
            return [node.attr]
        return []


@register
class SPMDDivergenceRule(Rule):
    """R6: no collective reachable only under a rank-dependent branch."""

    id = "R6"
    title = "rank-divergent collective"
    rationale = (
        "SPMD discipline is the whole contract of the paper's 62K-rank "
        "runs: every rank must issue the same collectives and halo "
        "posts in the same order.  A barrier/allreduce/gather (or a "
        "halo assemble/post) guarded by a condition derived from "
        "comm.rank executes on some ranks and not others — the ranks "
        "that reach it wait forever for the ones that never will.  The "
        "comm sanitizer can only catch this at runtime on the path it "
        "happens to execute; this rule follows the rank-taint lattice "
        "(comm.rank through assignments, returns and call arguments, "
        "project-wide) and flags any collective — direct, or reached "
        "through a called function — lexically under a rank-tainted "
        "if/while.  Rank-dependent work is fine; rank-dependent "
        "*communication schedules* are not."
    )
    scope_dirs = ("parallel", "solver")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._collective_reason(ctx, node)
            if what is None:
                continue
            guard = self._rank_guard(ctx, node)
            if guard is None:
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"collective {what} is reachable only under a rank-"
                    f"dependent branch (condition at line {guard.lineno}) "
                    f"— ranks diverge and the collective deadlocks; issue "
                    f"it unconditionally or make the condition "
                    f"rank-uniform",
                )
            )
        return findings

    def _collective_reason(
        self, ctx: FileContext, node: ast.Call
    ) -> str | None:
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in COLLECTIVE_ATTRS:
            return f".{node.func.attr}()"
        if ctx.project is not None:
            for qual in ctx.project.call_targets(node):
                info = ctx.project.functions.get(qual)
                if info is not None and info.collective_via:
                    return f"{info.short}() [{info.collective_via}]"
        return None

    def _rank_guard(self, ctx: FileContext, node: ast.AST) -> ast.stmt | None:
        """The innermost rank-tainted if/while governing ``node``."""
        if ctx.project is None:
            return None
        child: ast.AST = node
        current = ctx.parent(node)
        while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            if (
                isinstance(current, (ast.If, ast.While))
                and child is not current.test
                and ctx.project.expr_is_rank_tainted(ctx, current.test)
            ):
                return current
            child = current
            current = ctx.parent(current)
        return None


@register
class StateLifecycleRule(ProjectRule):
    """R7: every dynamic state array survives checkpoint AND remap."""

    id = "R7"
    title = "state array missing from checkpoint/remap lifecycle"
    rationale = (
        "The paper's production runs restarted from disk across "
        "reservation windows, so checkpoint save/load and the shrink "
        "remap must capture the *complete* dynamic state — a field "
        "that is integrated every step but missing from one of those "
        "three surfaces restarts as zeros and corrupts the physics "
        "silently (no crash, wrong seismograms).  The rule re-derives "
        "the state registry from the source of truth: the ndarray "
        "fields of solver/fields.py dataclasses, the attenuation "
        "memory arrays mutated by AttenuationState's update methods, "
        "and the receiver recording buffers — then verifies each name "
        "is referenced by checkpoint.py's save functions, its "
        "load/read functions, and resilience/remap.py.  Adding a field "
        "without threading it through restart is a blocking finding, "
        "not a code review hope."
    )
    scope_suffixes = (
        "solver/fields.py", "solver/checkpoint.py", "resilience/remap.py",
    )

    def check_project(self, project) -> list[Finding]:
        fields_ctx = project.context_for_suffix("solver/fields.py")
        if fields_ctx is None:
            return []
        registry = self._state_registry(project, fields_ctx)
        if not registry:
            return []
        surfaces = self._surfaces(project)
        findings: list[Finding] = []
        for name, origin in registry:
            for tag, sctx, nodes, verb in surfaces:
                if any(self._covers(n, name) for n in nodes):
                    continue
                anchor = nodes[0] if nodes else sctx.tree
                findings.append(
                    Finding(
                        rule=self.id,
                        path=str(sctx.path),
                        line=getattr(anchor, "lineno", 1),
                        scope=f"{name}:{tag}",
                        message=(
                            f"dynamic state array {name!r} (declared in "
                            f"{origin}) is never {verb} — a restart "
                            f"would silently reset it"
                        ),
                    )
                )
        return findings

    def _surfaces(self, project):
        surfaces = []
        ckpt = project.context_for_suffix("solver/checkpoint.py")
        if ckpt is not None:
            defs = [
                n for n in ast.walk(ckpt.tree)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            surfaces.append((
                "save", ckpt, [n for n in defs if "save" in n.name],
                "captured by a checkpoint save function",
            ))
            surfaces.append((
                "load", ckpt,
                [n for n in defs
                 if "load" in n.name or n.name.startswith("read")],
                "restored by a checkpoint load function",
            ))
        remap = project.context_for_suffix("resilience/remap.py")
        if remap is not None:
            surfaces.append((
                "remap", remap, [remap.tree],
                "redistributed by the shrink remap",
            ))
        return surfaces

    def _state_registry(
        self, project, fields_ctx: FileContext
    ) -> list[tuple[str, str]]:
        registry: list[tuple[str, str]] = []
        for stmt in fields_ctx.tree.body:
            if not (isinstance(stmt, ast.ClassDef)
                    and stmt.name.endswith("Field")):
                continue
            for sub in stmt.body:
                if (
                    isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Name)
                    and self._is_ndarray_annotation(sub.annotation)
                ):
                    registry.append((sub.target.id, "solver/fields.py"))
        atten = project.context_for_suffix("solver/attenuation.py")
        if atten is not None:
            for name in sorted(self._mutated_state_attrs(atten)):
                registry.append((name, "solver/attenuation.py"))
        receivers = project.context_for_suffix("solver/receivers.py")
        if receivers is not None and any(
            isinstance(n, ast.ClassDef) and "ReceiverSet" in n.name
            for n in ast.walk(receivers.tree)
        ):
            for name in ("seis_data", "seis_step", "seis_n_steps"):
                registry.append((name, "solver/receivers.py"))
        return registry

    def _is_ndarray_annotation(self, annotation: ast.expr) -> bool:
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Attribute) and sub.attr == "ndarray":
                return True
            if isinstance(sub, ast.Name) and sub.id == "ndarray":
                return True
            if isinstance(sub, ast.Constant) and \
                    isinstance(sub.value, str) and "ndarray" in sub.value:
                return True
        return False

    def _mutated_state_attrs(self, atten: FileContext) -> set[str]:
        """self.<attr> arrays an Attenuation class mutates outside init."""
        names: set[str] = set()
        for cls in ast.walk(atten.tree):
            if not (isinstance(cls, ast.ClassDef)
                    and "Attenuation" in cls.name):
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) or method.name == "__init__":
                    continue
                for node in ast.walk(method):
                    target: ast.expr | None = None
                    if isinstance(node, ast.AugAssign):
                        target = node.target
                    elif isinstance(node, ast.Assign) and \
                            len(node.targets) == 1:
                        target = node.targets[0]
                    if isinstance(target, ast.Subscript):
                        target = target.value
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        names.add(target.attr)
        return names

    def _covers(self, node: ast.AST, name: str) -> bool:
        """Does this subtree reference the state array ``name``?

        Matches the exact string, the f-string prefix form
        (``f"{name}_{code}"`` leaves a ``"name_"`` constant), or an
        attribute access ``.name``.
        """
        prefixed = name + "_"
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                if sub.value == name or sub.value == prefixed:
                    return True
            elif isinstance(sub, ast.Attribute) and sub.attr == name:
                return True
        return False


@register
class BatchedDispatchRule(Rule):
    """R8: ndim dispatch must cover both batched and unbatched layouts."""

    id = "R8"
    title = "one-sided ndim dispatch"
    rationale = (
        "Event-batched execution (docs/batching.md) distinguishes the "
        "batched and unbatched field layouts purely by ndim — displ is "
        "(nglob, 3) or (B, nglob, 3), zeta is 7- or 8-dimensional.  "
        "Every function consuming field arrays therefore dispatches on "
        "ndim, and the sanctioned shapes are: a batched arm that ends "
        "terminally (return/raise/continue) so the code below stays "
        "unbatched-only, an explicit else, or a validating "
        "`ndim != K: raise`.  An if-on-ndim that mutates state and then "
        "falls through runs the shared tail in BOTH layouts — the "
        "silent half-coverage bug class that appears every time a new "
        "kernel variant is added (the ARM-SME SEM work shows variant "
        "proliferation is where modern SEM speed lives, so this "
        "pattern gets stress-tested constantly)."
    )
    scope_dirs = ("kernels", "solver")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.If):
                continue
            if not self._is_ndim_test(node.test):
                continue
            if node.orelse or self._terminal(node.body):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "branch on ndim falls through to shared code — the "
                    "tail then runs for both the batched and unbatched "
                    "layouts; end the arm with return/raise or add an "
                    "explicit else",
                )
            )
        return findings

    def _is_ndim_test(self, test: ast.expr) -> bool:
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return False

        def is_ndim(e: ast.expr) -> bool:
            return isinstance(e, ast.Attribute) and e.attr == "ndim"

        def is_int(e: ast.expr) -> bool:
            return (
                isinstance(e, ast.Constant)
                and isinstance(e.value, int)
                and not isinstance(e.value, bool)
            )

        left, right = test.left, test.comparators[0]
        return (is_ndim(left) and is_int(right)) or \
            (is_ndim(right) and is_int(left))

    def _terminal(self, body: list[ast.stmt]) -> bool:
        last = body[-1]
        if isinstance(last, (ast.Return, ast.Raise, ast.Continue)):
            return True
        if isinstance(last, ast.If):
            return bool(
                last.orelse
                and self._terminal(last.body)
                and self._terminal(last.orelse)
            )
        return False


@register
class AsyncHygieneRule(Rule):
    """R9: no blocking calls on the event loop thread."""

    id = "R9"
    title = "blocking call in async def"
    rationale = (
        "The service's event loop multiplexes every client connection "
        "on one thread; a single sync disk read (np.load of a cached "
        "run, a manifest scan, a WorkerPool.run) inside an `async def` "
        "freezes ALL in-flight requests for its duration — the "
        "single-flight coalescing and p99 latency story collapse, and "
        "under load the health checks time out.  The rule deny-lists "
        "direct blocking primitives (time.sleep, open/np.load/np.save*, "
        "Path read/write helpers, subprocess) inside async defs in "
        "service/, and follows the project call graph through *sync* "
        "callees so a blocking store.load two hops away is still "
        "caught.  Calls routed through asyncio.to_thread or "
        "run_in_executor run off-loop and are exempt — that is the "
        "fix, not an escape hatch."
    )
    scope_dirs = ("service",)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in walk_function_body(func):
                if not isinstance(node, ast.Call):
                    continue
                if self._is_deferred(ctx, node, func):
                    continue
                reason = self._blocking_reason(ctx, node)
                if reason is None:
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"blocking call on the event loop in async "
                        f"{func.name}(): {reason}; route it through "
                        f"asyncio.to_thread or run_in_executor",
                    )
                )
        return findings

    def _blocking_reason(self, ctx: FileContext, node: ast.Call) -> str | None:
        reason = blocking_call_reason(node)
        if reason is not None:
            return reason
        if ctx.project is None:
            return None
        for qual in ctx.project.call_targets(node):
            info = ctx.project.functions.get(qual)
            if info is not None and not info.is_async and \
                    info.blocking_reason:
                return f"{info.short}() blocks ({info.blocking_reason})"
        return None

    def _is_deferred(
        self, ctx: FileContext, node: ast.Call, boundary: ast.AST
    ) -> bool:
        from .core import attr_chain, _DEFER_ATTRS

        current = ctx.parent(node)
        while current is not None and current is not boundary:
            if isinstance(current, ast.Call):
                chain = attr_chain(current.func)
                if chain is not None and \
                        chain.rsplit(".", 1)[-1] in _DEFER_ATTRS:
                    return True
            current = ctx.parent(current)
        return False
