"""The rule pack: this codebase's SPMD and numerical invariants.

Each rule encodes a discipline the paper's production runs depended on
(see the rationale strings, surfaced by ``python -m repro.analysis
explain RULE``).  Rules are heuristic by design — they over-approximate
where the alternative is missing a real bug, and every false positive
has a recorded escape hatch (pragma or baseline entry).
"""

from __future__ import annotations

import ast

from .core import FileContext, Finding, Rule, register

__all__ = [
    "BroadExceptRule",
    "DeterminismRule",
    "HotLoopAllocRule",
    "LeakedRequestRule",
    "MagicTagRule",
]


def _attr_chain(node: ast.AST) -> str | None:
    """Dotted source text of a Name/Attribute chain (``np.random.rand``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _contains_wait_site(node: ast.AST, name: str) -> bool:
    """Does the subtree call ``name.wait(...)``?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "wait"
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == name
        ):
            return True
    return False


@register
class LeakedRequestRule(Rule):
    """R1: every isend/irecv request must reach a wait on all paths."""

    id = "R1"
    title = "leaked non-blocking request"
    rationale = (
        "An irecv whose request is never waited silently drops a halo "
        "contribution — the mass-matrix or force assembly is then wrong "
        "on exactly one slice boundary, which surfaces only as a flaky "
        "bit-identity failure.  An unwaited isend is legal-looking code "
        "that deadlocks on a real MPI once payloads cross the rendezvous "
        "threshold.  The rule flags requests whose result is discarded, "
        "never used, or waited only on some control-flow paths; handles "
        "that escape (stored, returned, passed to waitall or a helper) "
        "are assumed managed by their new owner."
    )
    scope_dirs = ("parallel", "solver")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("isend", "irecv")
            ):
                continue
            parent = ctx.parent(node)
            if isinstance(parent, ast.Expr):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"result of {node.func.attr}() is discarded — the "
                        f"request can never reach a wait",
                    )
                )
                continue
            if (
                isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)
            ):
                found = self._check_named(
                    ctx, node, parent, parent.targets[0].id
                )
                if found is not None:
                    findings.append(found)
            # Any other context (call argument, list element, attribute
            # store, tuple unpack) hands the request to other code; the
            # new owner is responsible and out of intra-function reach.
        return findings

    def _check_named(
        self,
        ctx: FileContext,
        call: ast.Call,
        assign: ast.Assign,
        name: str,
    ) -> Finding | None:
        scope: ast.AST = ctx.enclosing_function(call) or ctx.tree
        used = False
        for sub in ast.walk(scope):
            if not (
                isinstance(sub, ast.Name)
                and sub.id == name
                and isinstance(sub.ctx, ast.Load)
            ):
                continue
            used = True
            sub_parent = ctx.parent(sub)
            is_wait = (
                isinstance(sub_parent, ast.Attribute)
                and sub_parent.attr == "wait"
                and isinstance(ctx.parent(sub_parent), ast.Call)
            )
            if not is_wait:
                # Escapes: appended to a pending list, passed to
                # waitall/wait_many, returned — assume managed.
                return None
        if not used:
            return self.finding(
                ctx,
                call,
                f"request {name!r} from {call.func.attr}() is never "
                f"waited on",
            )
        if self._covered_after(ctx, assign, name):
            return None
        return self.finding(
            ctx,
            call,
            f"request {name!r} from {call.func.attr}() is not waited on "
            f"all control-flow paths",
        )

    def _covered_after(
        self, ctx: FileContext, stmt: ast.stmt, name: str
    ) -> bool:
        """Is a wait guaranteed on every path after ``stmt``?

        Climbs enclosing blocks: statements following ``stmt`` in its
        block must cover, or fall-through continues into the parent
        block.  Loops never guarantee execution of their body.
        """
        current: ast.stmt = stmt
        while True:
            parent = ctx.parent(current)
            if parent is None:
                return False
            block: list[ast.stmt] | None = None
            for _field, value in ast.iter_fields(parent):
                if isinstance(value, list) and current in value:
                    block = value
                    break
            if block is None:
                return False
            rest = block[block.index(current) + 1 :]
            if self._seq_covers(rest, name):
                return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if not isinstance(parent, ast.stmt):
                return False
            current = parent

    def _seq_covers(self, stmts: list[ast.stmt], name: str) -> bool:
        return any(self._stmt_covers(s, name) for s in stmts)

    def _stmt_covers(self, stmt: ast.stmt, name: str) -> bool:
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, ast.If):
            return bool(
                stmt.orelse
                and self._seq_covers(stmt.body, name)
                and self._seq_covers(stmt.orelse, name)
            )
        if isinstance(stmt, ast.Try):
            return self._seq_covers(stmt.body, name) or self._seq_covers(
                stmt.finalbody, name
            )
        if isinstance(stmt, ast.With):
            return self._seq_covers(stmt.body, name)
        if isinstance(stmt, (ast.For, ast.While)):
            return False  # the body may execute zero times
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return False
        return _contains_wait_site(stmt, name)


@register
class MagicTagRule(Rule):
    """R2: comm tags come from parallel/tags.py, and channels don't collide."""

    id = "R2"
    title = "magic message tag"
    rationale = (
        "Tag values are the wire-level namespace of the halo protocol: a "
        "literal 2000 at one call site and a literal 2000 at another are "
        "an invisible coupling, and two channels closer than one region "
        "block silently cross-match messages.  All tags must be named "
        "constants from repro/parallel/tags.py (or region_tag() over "
        "them); the rule additionally re-derives the registry from that "
        "file's AST and rejects bases closer than TAG_BLOCK."
    )
    scope_dirs = ("parallel", "solver")

    #: positional index of the ``tag`` parameter per comm method.
    TAG_ARG_INDEX = {"send": 2, "isend": 2, "recv": 1, "irecv": 1, "sendrecv": 3}

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.path.name == "tags.py":
            return self._check_registry(ctx)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.TAG_ARG_INDEX
            ):
                continue
            tag_expr: ast.expr | None = None
            for kw in node.keywords:
                if kw.arg == "tag":
                    tag_expr = kw.value
            if tag_expr is None:
                index = self.TAG_ARG_INDEX[node.func.attr]
                if len(node.args) > index:
                    tag_expr = node.args[index]
            if tag_expr is None:
                continue
            for sub in ast.walk(tag_expr):
                if (
                    isinstance(sub, ast.Constant)
                    and isinstance(sub.value, int)
                    and not isinstance(sub.value, bool)
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"magic tag literal {sub.value} in "
                            f"{node.func.attr}() — use a constant from "
                            f"parallel/tags.py",
                        )
                    )
                    break
        return findings

    def _check_registry(self, ctx: FileContext) -> list[Finding]:
        """Re-derive the tag registry and verify channel separation."""
        consts: dict[str, tuple[int, ast.stmt]] = {}
        for stmt in ctx.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
                and not isinstance(stmt.value.value, bool)
            ):
                consts[stmt.targets[0].id] = (stmt.value.value, stmt)
        block = consts.get("TAG_BLOCK", (1000, None))[0]
        bases = sorted(
            ((v, name, stmt) for name, (v, stmt) in consts.items()
             if name != "TAG_BLOCK"),
        )
        findings: list[Finding] = []
        for (va, na, _sa), (vb, nb, sb) in zip(bases, bases[1:]):
            if vb - va < block:
                findings.append(
                    self.finding(
                        ctx,
                        sb,
                        f"tag channels {na}={va} and {nb}={vb} are closer "
                        f"than TAG_BLOCK={block}: region offsets would "
                        f"collide in tag space",
                    )
                )
        return findings


@register
class HotLoopAllocRule(Rule):
    """R3: no array allocation inside time-step-loop functions."""

    id = "R3"
    title = "allocation in time-step loop"
    rationale = (
        "The paper's kernels run ~50000 times per simulation; a fresh "
        "np.zeros/np.empty/np.concatenate per call turns into allocator "
        "traffic and page faults that dominate at scale, and a dtype-"
        "less np.empty silently defaults to float64 on one platform and "
        "whatever numpy decides on another.  Functions on the time-step "
        "path carry a `# repro: hot-loop` marker on their def line (the "
        "rule insists every compute_forces* kernel entry point does); "
        "inside them, array allocation and list-append accumulation are "
        "flagged — preallocate in __init__ and fill in place.  One "
        "sanctioned pragma case: the event-batched kernel branches "
        "(docs/batching.md) np.empty their batched OUTPUT before the "
        "per-event sweep — the unbatched path's einsum allocates its "
        "result the same way, so the explicit form is no extra traffic, "
        "and it must carry a dtype (np.empty_like needs no pragma)."
    )
    scope_dirs = ("kernels",)
    scope_suffixes = ("solver/solver.py",)

    ALLOC_ATTRS = ("zeros", "empty", "concatenate")
    GATHER_ATTRS = ("concatenate", "stack", "array")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        in_kernels = "kernels" in ctx.path.parts[:-1]
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            hot = func.lineno in ctx.hot_lines
            if in_kernels and func.name.startswith("compute_forces") and not hot:
                findings.append(
                    self.finding(
                        ctx,
                        func,
                        f"kernel entry point {func.name}() must carry a "
                        f"`# repro: hot-loop` marker on its def line",
                    )
                )
            if hot:
                findings.extend(self._check_hot(ctx, func))
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _attr_chain(node.func) in ("np.empty", "numpy.empty")
                and len(node.args) < 2
                and not any(kw.arg == "dtype" for kw in node.keywords)
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "np.empty() without an explicit dtype — the field "
                        "precision must be stated, not defaulted",
                    )
                )
        return findings

    def _check_hot(self, ctx: FileContext, func: ast.AST) -> list[Finding]:
        findings: list[Finding] = []
        list_names: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.List)
                and not node.value.elts
            ):
                list_names.add(node.targets[0].id)
        gathered: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and _attr_chain(node.func) in {
                f"np.{a}" for a in self.GATHER_ATTRS
            }:
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name):
                            gathered.add(sub.id)
        name = getattr(func, "name", "<lambda>")
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain in {f"np.{a}" for a in self.ALLOC_ATTRS} or chain in {
                f"numpy.{a}" for a in self.ALLOC_ATTRS
            }:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{chain}() allocates inside time-step-loop "
                        f"function {name}() — preallocate and fill in "
                        f"place",
                    )
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in list_names
                and node.func.value.id in gathered
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"list-append accumulation into an array inside "
                        f"time-step-loop function {name}()",
                    )
                )
        return findings


@register
class DeterminismRule(Rule):
    """R4: no unseeded randomness or wall-clock reads in deterministic paths."""

    id = "R4"
    title = "non-determinism in deterministic path"
    rationale = (
        "Bit-identity between the blocking and overlapped schedules — "
        "and between a run and its restart — is a load-bearing test "
        "oracle here, as it was for the paper's validation.  Global-"
        "state RNG (np.random.rand, random.random) and wall-clock reads "
        "(time.time, datetime.now) make results depend on call order "
        "and machine time.  Mesh, model, kernel, and solver code must "
        "use an explicitly seeded np.random.default_rng(seed) and take "
        "clocks as injected parameters.  The serving tier is in scope "
        "too: its content-addressed cache keys must never fold in "
        "wall-clock or RNG state (latency timing uses the monotonic "
        "time.perf_counter, which is allowed)."
    )
    scope_dirs = ("mesh", "kernels", "solver", "model", "service")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            if chain.startswith(("np.random.", "numpy.random.")):
                leaf = chain.rsplit(".", 1)[1]
                seeded = leaf == "default_rng" and (node.args or node.keywords)
                if not seeded:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{chain}() in a deterministic path — use a "
                            f"seeded np.random.default_rng(seed)",
                        )
                    )
            elif chain.startswith("random."):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"stdlib {chain}() uses global RNG state — use a "
                        f"seeded np.random.default_rng(seed)",
                    )
                )
            elif chain in ("time.time", "datetime.now", "datetime.utcnow",
                           "datetime.datetime.now", "datetime.datetime.utcnow"):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"wall-clock read {chain}() in a deterministic "
                        f"path — inject timestamps from the caller",
                    )
                )
        return findings


@register
class BroadExceptRule(Rule):
    """R5: no broad except that swallows the typed error hierarchy."""

    id = "R5"
    title = "broad exception swallowed"
    rationale = (
        "The parallel/campaign/chaos layers communicate failure through "
        "a typed hierarchy (RankFailedError, NumericalHealthError, "
        "CheckpointCorruptionError, ConfigError) that retry policies "
        "and drills dispatch on.  A bare `except:` or an `except "
        "Exception:` that does not re-raise collapses that hierarchy — "
        "a genuine rank death gets retried like a transient, or a "
        "corrupted checkpoint gets reported as success.  Handlers must "
        "catch typed errors, or re-raise (possibly wrapped) what they "
        "catch.  The service HTTP boundary is in scope: it maps *typed* "
        "failures to status codes and lets unexpected bugs surface "
        "instead of turning them all into opaque 500s."
    )
    scope_dirs = ("parallel", "campaign", "chaos", "service")

    BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "bare `except:` swallows the typed error "
                        "hierarchy (and KeyboardInterrupt)",
                    )
                )
                continue
            names = self._type_names(node.type)
            broad = [n for n in names if n in self.BROAD]
            if not broad:
                continue
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue  # re-raised (possibly wrapped): hierarchy intact
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"`except {broad[0]}` without re-raise swallows the "
                    f"typed error hierarchy",
                )
            )
        return findings

    def _type_names(self, node: ast.expr) -> list[str]:
        if isinstance(node, ast.Tuple):
            names: list[str] = []
            for elt in node.elts:
                names.extend(self._type_names(elt))
            return names
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Attribute):
            return [node.attr]
        return []
