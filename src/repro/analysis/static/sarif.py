"""SARIF 2.1.0 export for analyzer reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning, VS Code's SARIF viewer and most CI result
browsers ingest — emitting it means the analyzer's findings annotate the
PR diff instead of living in a job log.  The exporter is dependency-free
(plain dict construction) and :func:`validate_sarif` is a structural
self-check against the slice of the 2.1.0 schema we emit, so the CI
upload step cannot ship a malformed document even without ``jsonschema``
installed.
"""

from __future__ import annotations

from typing import Any

from .core import REGISTRY, Report, normalize_path

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Synthetic rule id used for files the analyzer could not parse.
PARSE_RULE = {
    "id": "parse",
    "shortDescription": {"text": "file does not parse"},
    "fullDescription": {
        "text": "The analyzer could not build an AST for this file; "
        "every other rule is blind to it until the syntax error is "
        "fixed."
    },
}


def to_sarif(report: Report, tool_version: str = "1.0.0") -> dict[str, Any]:
    """Render a :class:`Report` as a SARIF 2.1.0 ``sarifLog`` dict."""
    used = {f.rule for f in report.findings}
    rules: list[dict[str, Any]] = []
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        rules.append(
            {
                "id": rule.id,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    if "parse" in used:
        rules.append(dict(PARSE_RULE))
    index = {r["id"]: i for i, r in enumerate(rules)}

    results: list[dict[str, Any]] = []
    for finding in report.findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            # SARIF uris are relative to SRCROOT; strip
                            # the leading slash tmp-path fixtures keep.
                            "uri": normalize_path(finding.path).lstrip("/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
            "partialFingerprints": {"reproAnalysisKey/v1": finding.key},
        }
        if finding.rule in index:
            result["ruleIndex"] = index[finding.rule]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": (
                            "https://example.invalid/repro/docs/analysis.md"
                        ),
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
                "properties": {
                    "filesChecked": report.files_checked,
                    "suppressed": report.suppressed,
                    "baselined": report.baselined,
                },
            }
        ],
    }


def validate_sarif(doc: Any) -> list[str]:
    """Structural validation of the SARIF slice we emit.

    Returns a list of problems (empty == valid).  Covers every
    constraint the 2.1.0 schema places on the fields :func:`to_sarif`
    produces: required members, member types, and the version literal.
    """
    errors: list[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errors.append(msg)
        return cond

    if not expect(isinstance(doc, dict), "sarifLog must be an object"):
        return errors
    expect(doc.get("version") == SARIF_VERSION,
           f"version must be the literal {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not expect(isinstance(runs, list) and runs,
                  "runs must be a non-empty array"):
        return errors
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not expect(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if expect(isinstance(driver, dict),
                  f"{where}.tool.driver is required"):
            expect(isinstance(driver.get("name"), str) and driver["name"],
                   f"{where}.tool.driver.name must be a non-empty string")
            for j, rule in enumerate(driver.get("rules", [])):
                rwhere = f"{where}.tool.driver.rules[{j}]"
                if expect(isinstance(rule, dict),
                          f"{rwhere} must be an object"):
                    expect(isinstance(rule.get("id"), str) and rule["id"],
                           f"{rwhere}.id must be a non-empty string")
        results = run.get("results")
        if not expect(isinstance(results, list),
                      f"{where}.results must be an array"):
            continue
        rule_ids = {
            r.get("id") for r in (driver or {}).get("rules", [])
            if isinstance(r, dict)
        }
        for j, res in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not expect(isinstance(res, dict),
                          f"{rwhere} must be an object"):
                continue
            message = res.get("message")
            expect(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{rwhere}.message.text is required",
            )
            if "ruleId" in res:
                expect(res["ruleId"] in rule_ids,
                       f"{rwhere}.ruleId {res['ruleId']!r} not declared "
                       f"in tool.driver.rules")
            for k, loc in enumerate(res.get("locations", [])):
                lwhere = f"{rwhere}.locations[{k}]"
                phys = loc.get("physicalLocation") \
                    if isinstance(loc, dict) else None
                if not expect(isinstance(phys, dict),
                              f"{lwhere}.physicalLocation is required"):
                    continue
                art = phys.get("artifactLocation")
                if expect(isinstance(art, dict),
                          f"{lwhere}...artifactLocation is required"):
                    uri = art.get("uri")
                    expect(isinstance(uri, str) and uri,
                           f"{lwhere}...artifactLocation.uri must be a "
                           f"non-empty string")
                    expect(not str(uri).startswith("/"),
                           f"{lwhere}...uri must be relative")
                region = phys.get("region")
                if region is not None and expect(
                    isinstance(region, dict),
                    f"{lwhere}...region must be an object",
                ):
                    start = region.get("startLine")
                    expect(isinstance(start, int) and start >= 1,
                           f"{lwhere}...region.startLine must be >= 1")
    return errors
