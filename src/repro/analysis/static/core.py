"""Framework of the domain-specific static analyzer.

Dependency-free (stdlib ``ast`` + ``tokenize``) machinery shared by the
rule pack in :mod:`repro.analysis.static.rules`:

* :class:`Rule` — base class; concrete rules declare an ``id``, a scope
  (directory names and/or path suffixes), and a ``check`` over one
  parsed file.  The :func:`register` decorator adds them to the global
  :data:`REGISTRY`.
* :class:`FileContext` — one parsed source file with an AST parent map,
  enclosing-scope lookup, and the comment-derived pragma state: ``#
  repro: disable=R1,R3 - reason`` suppresses those rules on its line
  (a standalone pragma comment suppresses the next line), and ``#
  repro: hot-loop`` on a ``def`` line marks a time-step-loop function
  for rule R3.
* :class:`Baseline` — the reviewed grandfather list.  Keys are
  ``rule:path:scope`` (line-number free, so unrelated edits do not
  invalidate them); every entry carries a one-line justification.
* :class:`Project` — the whole-program index built over every file of
  one run: a cross-module call graph (imports, ``self.`` methods,
  constructor-typed attributes), a rank-taint lattice (values derived
  from ``comm.rank`` / ``my_rank`` propagate through assignments,
  returns and call arguments to a fixpoint), blocking-call propagation
  for the async-hygiene rule, and request-return tracking so R1 can
  follow an isend result across function boundaries.
* :class:`ProjectRule` — rules that reason about several files at once
  (``check_project`` instead of per-file ``check``).
* :func:`check_paths` — run the (selected) rules over files/trees and
  fold pragma and baseline suppression into a :class:`Report`.  The
  :class:`Project` is always built over *all* given files, so an
  optional ``select`` set (the ``--diff`` changed-files mode) narrows
  reporting without weakening interprocedural reasoning.

The rules are deliberately *approximate* — sound enough to catch the
bug classes that matter here, simple enough to audit.  When a rule is
wrong about a specific site, the pragma records the human judgement in
the source; when a finding is known and accepted, the baseline records
it with a justification.  Neither mechanism is silent.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "FunctionInfo",
    "Project",
    "ProjectRule",
    "REGISTRY",
    "Report",
    "Rule",
    "check_paths",
    "normalize_path",
    "register",
]

_PRAGMA_RE = re.compile(r"#\s*repro:\s*(.+)")


def normalize_path(path: str | Path) -> str:
    """Stable, repo-relative form of a path for baseline keys.

    Starts at the first ``repro`` path component when present (so
    ``/home/x/repo/src/repro/parallel/halo.py`` and a checkout elsewhere
    produce the same key); otherwise the path is used as given.
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return PurePath(path).as_posix()


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    scope: str
    message: str

    @property
    def key(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.rule}:{normalize_path(self.path)}:{self.scope}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.scope}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "scope": self.scope,
            "message": self.message,
            "key": self.key,
        }


class FileContext:
    """One parsed file plus the lookups every rule needs."""

    def __init__(self, path: str | Path, source: str):
        self.path = Path(path)
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        #: line -> head line of the innermost statement spanning it, so a
        #: pragma on a continuation line of a multi-line statement also
        #: governs the line findings anchor to (the statement head).
        self._stmt_head: dict[int, int] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            end = getattr(node, "end_lineno", None)
            if end is None or end <= node.lineno:
                continue
            for row in range(node.lineno, end + 1):
                # Innermost statement wins: of all statements spanning a
                # row, the one starting latest starts closest to it.
                if node.lineno > self._stmt_head.get(row, 0):
                    self._stmt_head[row] = node.lineno
        #: line -> rule ids suppressed on that line.
        self.disabled: dict[int, set[str]] = {}
        #: ``def`` lines carrying the ``# repro: hot-loop`` marker.
        self.hot_lines: set[int] = set()
        self._scan_pragmas()
        #: Back-reference to the run's whole-program index; set by
        #: :func:`check_paths` before any rule runs.
        self.project: "Project | None" = None

    def _scan_pragmas(self) -> None:
        lines = self.source.splitlines()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, IndentationError):
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _PRAGMA_RE.match(tok.string)
            if not m:
                continue
            body = m.group(1).strip()
            row = tok.start[0]
            before = lines[row - 1][: tok.start[1]] if row <= len(lines) else ""
            # A standalone pragma comment governs the next line; an
            # inline one governs its own.  Either way, a target inside a
            # multi-line statement also governs the statement head —
            # findings anchor there, not at the continuation line.
            targets = [row + 1] if not before.strip() else [row]
            for t in list(targets):
                head = self._stmt_head.get(t)
                if head is not None and head not in targets:
                    targets.append(head)
            if body.startswith("disable="):
                spec = body[len("disable="):].split()[0]
                rules = {r.strip() for r in spec.split(",") if r.strip()}
                for t in targets:
                    self.disabled.setdefault(t, set()).update(rules)
            elif body.startswith("hot-loop"):
                for t in targets:
                    self.hot_lines.add(t)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def scope_of(self, node: ast.AST) -> str:
        """Dotted enclosing function/class name, or ``<module>``."""
        names: list[str] = []
        current: ast.AST | None = self.parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(names)) if names else "<module>"

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        current: ast.AST | None = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def is_suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.disabled.get(finding.line, set())


class Rule:
    """Base class for one analyzer rule.

    ``scope_dirs`` restricts the rule to files whose *directory* path
    contains one of the names (the basename is excluded, so a file
    merely called ``parallel.py`` is not in scope); ``scope_suffixes``
    admits specific files (e.g. ``solver/solver.py``) regardless of
    directory scope.  Empty scope means every file.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    scope_dirs: tuple[str, ...] = ()
    scope_suffixes: tuple[str, ...] = ()

    def applies_to(self, path: str | Path) -> bool:
        if not self.scope_dirs and not self.scope_suffixes:
            return True
        p = PurePath(path)
        if any(part in self.scope_dirs for part in p.parts[:-1]):
            return True
        posix = p.as_posix()
        return any(posix.endswith(suffix) for suffix in self.scope_suffixes)

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 0),
            scope=ctx.scope_of(node),
            message=message,
        )


class ProjectRule(Rule):
    """A rule that reasons across files (state-lifecycle completeness).

    ``check_project`` runs once per analyzer invocation over the whole
    :class:`Project`; findings still anchor to concrete files/lines so
    pragma and baseline suppression work unchanged.
    """

    project_level = True

    def check(self, ctx: FileContext) -> list[Finding]:  # pragma: no cover
        return []

    def check_project(self, project: "Project") -> list[Finding]:
        raise NotImplementedError


def attr_chain(node: ast.AST) -> str | None:
    """Dotted source text of a Name/Attribute chain (``np.random.rand``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_function_body(node: ast.AST):
    """Walk a function's own statements, excluding nested def/lambda bodies.

    Nested functions and lambdas are separate execution units — code in
    them runs when *they* are called, so their calls must not count as
    facts (blocking, collective, taint) of the enclosing function.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        yield sub
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(sub))


#: Communicator/halo attribute names that are collective (every rank
#: must reach them, same order): the VirtualComm collectives plus the
#: HaloExchanger seams.  ``wait`` on a single request is per-rank and
#: deliberately excluded.
COLLECTIVE_ATTRS = frozenset({
    "allreduce", "gather", "barrier",
    "assemble", "assemble_many", "post", "post_many", "wait_many",
    "exchange",
})

#: Attribute chains / names that block the calling thread (R9's direct
#: deny-list).  Receiver-independent method names are matched on the
#: final attribute.
_BLOCKING_CHAINS = {
    "time.sleep": "time.sleep() stalls the thread",
    "np.load": "np.load() is sync disk I/O",
    "np.save": "np.save() is sync disk I/O",
    "np.savez": "np.savez() is sync disk I/O",
    "np.savez_compressed": "np.savez_compressed() is sync disk I/O",
    "numpy.load": "numpy.load() is sync disk I/O",
    "numpy.save": "numpy.save() is sync disk I/O",
    "numpy.savez": "numpy.savez() is sync disk I/O",
    "numpy.savez_compressed": "numpy.savez_compressed() is sync disk I/O",
    "os.replace": "os.replace() is sync file-system I/O",
    "os.rename": "os.rename() is sync file-system I/O",
    "os.fdopen": "os.fdopen() opens a sync file handle",
    "tempfile.mkstemp": "tempfile.mkstemp() is sync file-system I/O",
}
_BLOCKING_METHOD_ATTRS = {
    "read_text": ".read_text() is sync file I/O",
    "write_text": ".write_text() is sync file I/O",
    "read_bytes": ".read_bytes() is sync file I/O",
    "write_bytes": ".write_bytes() is sync file I/O",
    "open": ".open() is sync file I/O",
}
_BLOCKING_CHAIN_PREFIXES = ("subprocess.", "shutil.")

#: Wrappers whose callable/argument subtrees run OFF the event loop —
#: calls underneath them are exempt from R9 and from blocking
#: propagation.
_DEFER_ATTRS = ("to_thread", "run_in_executor")


def blocking_call_reason(call: ast.Call) -> str | None:
    """Why this call blocks the calling thread, or None if it doesn't."""
    chain = attr_chain(call.func)
    if chain is not None:
        if chain in _BLOCKING_CHAINS:
            return _BLOCKING_CHAINS[chain]
        if chain.startswith(_BLOCKING_CHAIN_PREFIXES):
            return f"{chain}() is a sync subprocess/file operation"
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return "open() is sync file I/O"
    if isinstance(call.func, ast.Attribute):
        reason = _BLOCKING_METHOD_ATTRS.get(call.func.attr)
        if reason is not None:
            return reason
    return None


@dataclass
class FunctionInfo:
    """One function (or module body) in the whole-program index."""

    qualname: str
    module: str
    name: str
    node: ast.AST
    ctx: FileContext
    class_qual: str | None = None
    is_async: bool = False
    is_method: bool = False
    params: list[str] = field(default_factory=list)
    #: (call node, resolved callee qualnames, runs-off-thread flag)
    calls: list[tuple[ast.Call, tuple[str, ...], bool]] = field(
        default_factory=list
    )
    #: why the function blocks the calling thread (None = it doesn't);
    #: transitive through resolved *sync* callees.
    blocking_reason: str | None = None
    #: a collective every rank must reach is (transitively) issued here.
    collective_via: str | None = None
    #: the function (transitively) returns an isend/irecv request.
    returns_request: bool = False
    #: the return value derives from comm.rank / my_rank.
    returns_rank: bool = False
    #: parameters that receive rank-derived arguments at some call site.
    tainted_params: set[str] = field(default_factory=set)
    #: local names holding rank-derived values (final fixpoint state).
    local_taint: set[str] = field(default_factory=set)

    @property
    def short(self) -> str:
        if self.class_qual:
            return f"{self.class_qual.rsplit('.', 1)[-1]}.{self.name}"
        return self.name


@dataclass
class _ClassInfo:
    qualname: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname
    #: self.<attr> whose value is constructed from a project class.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class _ModuleSymbols:
    name: str
    ctx: FileContext
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: dict[str, str] = field(default_factory=dict)  # name -> qualname


def _module_name(path: str | Path) -> str:
    norm = normalize_path(path)
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


_MAX_FIXPOINT_ITER = 12


class Project:
    """Whole-program index: call graph, rank taint, blocking, requests.

    Built once per :func:`check_paths` run over every parsed file; rules
    reach it through ``ctx.project``.  All resolution is best-effort —
    an unresolved call simply contributes no interprocedural fact, which
    keeps every propagated property an *under*-approximation (no fact is
    invented, so escalating a finding on one never fabricates a bug).
    """

    def __init__(self, contexts: list[FileContext]):
        self.contexts = list(contexts)
        self._ctx_by_path: dict[str, FileContext] = {
            str(c.path): c for c in contexts
        }
        self.modules: dict[str, _ModuleSymbols] = {}
        self._suffix_modules: dict[str, str | None] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, _ClassInfo] = {}
        self._info_by_node: dict[int, FunctionInfo] = {}
        self._call_targets: dict[int, tuple[str, ...]] = {}
        self.module_body: dict[str, FunctionInfo] = {}  # module -> body info
        # The AST never changes after parse, so the (expensive) per-
        # function body walk and the taint-relevant site lists are
        # computed once and reused across every fixpoint iteration.
        self._body_cache: dict[int, list[ast.AST]] = {}
        self._taint_sites: dict[
            int, tuple[list[tuple[list[ast.expr], ast.expr]], list[ast.Return]]
        ] = {}
        self._build_symbols()
        self._build_attr_types()
        self._build_calls()
        self._propagate()

    # -- lookups -------------------------------------------------------------

    def context_for_path(self, path: str | Path) -> FileContext | None:
        return self._ctx_by_path.get(str(path))

    def context_for_suffix(self, suffix: str) -> FileContext | None:
        """The context whose normalized path ends with ``suffix``."""
        for ctx in self.contexts:
            if normalize_path(ctx.path).endswith(suffix):
                return ctx
        return None

    def function_at(self, node: ast.AST) -> FunctionInfo | None:
        """The FunctionInfo of a def node (or a module body)."""
        return self._info_by_node.get(id(node))

    def enclosing_info(self, ctx: FileContext, node: ast.AST) -> FunctionInfo | None:
        """The function (or module body) whose code contains ``node``."""
        func = ctx.enclosing_function(node)
        if func is not None:
            return self._info_by_node.get(id(func))
        return self.module_body.get(_module_name(ctx.path))

    def call_targets(self, call: ast.Call) -> tuple[str, ...]:
        return self._call_targets.get(id(call), ())

    # -- pass A: modules, functions, classes ---------------------------------

    def _build_symbols(self) -> None:
        for ctx in self.contexts:
            mod = _ModuleSymbols(name=_module_name(ctx.path), ctx=ctx)
            self.modules[mod.name] = mod
            self._register_suffixes(mod.name)
            for stmt in ctx.tree.body:
                self._collect_import(mod, stmt)
            # Top-level functions and classes with one level of methods;
            # nested defs get infos too (keyed by node) but only
            # top-level names are resolvable.
            for stmt in ctx.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = self._add_function(ctx, mod, stmt, class_qual=None)
                    mod.functions[stmt.name] = info.qualname
                elif isinstance(stmt, ast.ClassDef):
                    cls = _ClassInfo(
                        qualname=f"{mod.name}.{stmt.name}",
                        name=stmt.name, node=stmt, ctx=ctx,
                    )
                    self.classes[cls.qualname] = cls
                    mod.classes[stmt.name] = cls.qualname
                    for sub in stmt.body:
                        if isinstance(
                            sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            info = self._add_function(
                                ctx, mod, sub, class_qual=cls.qualname
                            )
                            cls.methods[sub.name] = info.qualname
            body_info = FunctionInfo(
                qualname=f"{mod.name}.<module>", module=mod.name,
                name="<module>", node=ctx.tree, ctx=ctx,
            )
            self.module_body[mod.name] = body_info
            self._info_by_node[id(ctx.tree)] = body_info

    def _register_suffixes(self, name: str) -> None:
        parts = name.split(".")
        for i in range(1, min(len(parts), 4)):
            suffix = ".".join(parts[-i:])
            if suffix == name:
                continue
            if suffix in self._suffix_modules and \
                    self._suffix_modules[suffix] != name:
                self._suffix_modules[suffix] = None  # ambiguous
            else:
                self._suffix_modules[suffix] = name

    def _add_function(
        self,
        ctx: FileContext,
        mod: _ModuleSymbols,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_qual: str | None,
    ) -> FunctionInfo:
        scope = f"{class_qual}.{node.name}" if class_qual \
            else f"{mod.name}.{node.name}"
        args = node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args)]
        info = FunctionInfo(
            qualname=scope, module=mod.name, name=node.name, node=node,
            ctx=ctx, class_qual=class_qual,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            is_method=class_qual is not None, params=params,
        )
        self.functions[scope] = info
        self._info_by_node[id(node)] = info
        return info

    def _collect_import(self, mod: _ModuleSymbols, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mod.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                pkg_parts = mod.name.split(".")[:-1]
                drop = stmt.level - 1
                if drop:
                    pkg_parts = pkg_parts[:-drop] if drop <= len(pkg_parts) \
                        else []
                pkg = ".".join(pkg_parts)
                base = f"{pkg}.{stmt.module}" if stmt.module else pkg
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mod.imports[local] = f"{base}.{alias.name}" if base \
                    else alias.name

    # -- pass B: constructor-typed self attributes ---------------------------

    def _build_attr_types(self) -> None:
        for cls in self.classes.values():
            mod = self.modules[_module_name(cls.ctx.path)]
            for node in ast.walk(cls.node):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id == "self"
                ):
                    continue
                attr = node.targets[0].attr
                for expr in self._constructor_candidates(node.value):
                    target = self._resolve_constructor(mod, expr)
                    if target is not None:
                        cls.attr_types.setdefault(attr, target)
                        break

    def _constructor_candidates(self, expr: ast.expr):
        """The expression plus IfExp arms / BoolOp operands within it."""
        yield expr
        if isinstance(expr, ast.IfExp):
            yield from self._constructor_candidates(expr.body)
            yield from self._constructor_candidates(expr.orelse)
        elif isinstance(expr, ast.BoolOp):
            for value in expr.values:
                yield from self._constructor_candidates(value)

    def _resolve_constructor(
        self, mod: _ModuleSymbols, expr: ast.expr
    ) -> str | None:
        if not (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)):
            return None
        name = expr.func.id
        if name in mod.classes:
            return mod.classes[name]
        dotted = mod.imports.get(name)
        if dotted is not None:
            # Resolve to the class itself — not through _resolve_dotted,
            # which maps classes to their __init__ and so loses classes
            # that rely on the implicit object.__init__.
            parts = dotted.split(".")
            for i in range(len(parts) - 1, 0, -1):
                mname = ".".join(parts[:i])
                resolved_mod = mname if mname in self.modules else \
                    self._suffix_modules.get(mname)
                if not resolved_mod:
                    continue
                target = self.modules[resolved_mod]
                rest = parts[i:]
                if len(rest) == 1 and rest[0] in target.classes:
                    return target.classes[rest[0]]
                break
        return None

    # -- pass C: call sites + direct facts -----------------------------------

    def _build_calls(self) -> None:
        infos = list(self.functions.values()) + list(self.module_body.values())
        for info in infos:
            for node in walk_function_body(info.node):
                if not isinstance(node, ast.Call):
                    continue
                targets = self._resolve_call(info, node)
                deferred = self._is_deferred(info, node)
                info.calls.append((node, targets, deferred))
                self._call_targets[id(node)] = targets
                if deferred:
                    continue
                if info.blocking_reason is None:
                    info.blocking_reason = blocking_call_reason(node)
                if (
                    info.collective_via is None
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in COLLECTIVE_ATTRS
                ):
                    info.collective_via = f".{node.func.attr}()"

    def _is_deferred(self, info: FunctionInfo, node: ast.Call) -> bool:
        current: ast.AST | None = info.ctx.parent(node)
        while current is not None and current is not info.node:
            if isinstance(current, ast.Call):
                chain = attr_chain(current.func)
                if chain is not None and \
                        chain.rsplit(".", 1)[-1] in _DEFER_ATTRS:
                    return True
            current = info.ctx.parent(current)
        return False

    def _resolve_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> tuple[str, ...]:
        mod = self.modules.get(info.module)
        if mod is None:
            return ()
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(mod, func.id)
        chain = attr_chain(func)
        if chain is None:
            return ()
        parts = chain.split(".")
        if parts[0] == "self" and info.class_qual is not None:
            cls = self.classes.get(info.class_qual)
            if cls is None:
                return ()
            if len(parts) == 2:
                qual = cls.methods.get(parts[1])
                return (qual,) if qual else ()
            if len(parts) == 3:
                target_cls = self.classes.get(cls.attr_types.get(parts[1], ""))
                if target_cls is not None:
                    qual = target_cls.methods.get(parts[2])
                    return (qual,) if qual else ()
            return ()
        dotted = chain
        if parts[0] in mod.imports:
            rest = parts[1:]
            dotted = mod.imports[parts[0]]
            if rest:
                dotted = f"{dotted}.{'.'.join(rest)}"
        return self._resolve_dotted(dotted)

    def _resolve_name(self, mod: _ModuleSymbols, name: str) -> tuple[str, ...]:
        if name in mod.functions:
            return (mod.functions[name],)
        if name in mod.classes:
            return self._class_init(mod.classes[name])
        dotted = mod.imports.get(name)
        if dotted is not None:
            return self._resolve_dotted(dotted)
        return ()

    def _class_init(self, class_qual: str) -> tuple[str, ...]:
        cls = self.classes.get(class_qual)
        if cls is None:
            return ()
        qual = cls.methods.get("__init__")
        return (qual,) if qual else ()

    def _resolve_dotted(self, dotted: str) -> tuple[str, ...]:
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mname = ".".join(parts[:i])
            resolved_mod = mname if mname in self.modules else \
                self._suffix_modules.get(mname)
            if not resolved_mod:
                continue
            mod = self.modules[resolved_mod]
            rest = parts[i:]
            if len(rest) == 1:
                if rest[0] in mod.functions:
                    return (mod.functions[rest[0]],)
                if rest[0] in mod.classes:
                    return self._class_init(mod.classes[rest[0]])
            elif len(rest) == 2:
                class_qual = mod.classes.get(rest[0])
                if class_qual is not None:
                    cls = self.classes[class_qual]
                    qual = cls.methods.get(rest[1])
                    if qual:
                        return (qual,)
            return ()
        # Bare name: maybe a module-less function suffix ("helper.f"
        # resolved above); give up.
        return ()

    # -- fixpoint: taint, blocking, collectives, requests --------------------

    def _propagate(self) -> None:
        infos = list(self.functions.values()) + list(self.module_body.values())
        for _ in range(_MAX_FIXPOINT_ITER):
            changed = False
            for info in infos:
                changed |= self._update_function(info)
            if not changed:
                break
        # Final local-taint state for branch-condition queries (R6).
        for info in infos:
            info.local_taint = self._function_taint(info)[0]

    def _update_function(self, info: FunctionInfo) -> bool:
        changed = False
        tainted, returns_rank = self._function_taint(info)
        info.local_taint = tainted
        if returns_rank and not info.returns_rank:
            info.returns_rank = True
            changed = True
        if not info.returns_request and self._returns_request(info):
            info.returns_request = True
            changed = True
        for call, targets, deferred in info.calls:
            for qual in targets:
                callee = self.functions.get(qual)
                if callee is None:
                    continue
                # Rank taint flows into callee parameters.
                offset = 1 if callee.is_method else 0
                for i, arg in enumerate(call.args):
                    j = i + offset
                    if j < len(callee.params) and self._expr_tainted(
                        arg, tainted, info
                    ):
                        if callee.params[j] not in callee.tainted_params:
                            callee.tainted_params.add(callee.params[j])
                            changed = True
                for kw in call.keywords:
                    if (
                        kw.arg
                        and kw.arg in callee.params
                        and self._expr_tainted(kw.value, tainted, info)
                        and kw.arg not in callee.tainted_params
                    ):
                        callee.tainted_params.add(kw.arg)
                        changed = True
                if deferred:
                    continue
                # Blocking flows through *sync* callees only (an awaited
                # async callee yields the loop instead of blocking it).
                if (
                    info.blocking_reason is None
                    and not callee.is_async
                    and callee.blocking_reason is not None
                ):
                    info.blocking_reason = (
                        f"calls {callee.short}() which blocks: "
                        f"{callee.blocking_reason}"
                    )
                    changed = True
                if info.collective_via is None and callee.collective_via:
                    info.collective_via = (
                        f"calls {callee.short}() which issues "
                        f"{callee.collective_via}"
                    )
                    changed = True
        return changed

    def _body_nodes(self, info: FunctionInfo) -> list[ast.AST]:
        cached = self._body_cache.get(id(info.node))
        if cached is None:
            cached = list(walk_function_body(info.node))
            self._body_cache[id(info.node)] = cached
        return cached

    def _body_taint_sites(
        self, info: FunctionInfo
    ) -> tuple[list[tuple[list[ast.expr], ast.expr]], list[ast.Return]]:
        cached = self._taint_sites.get(id(info.node))
        if cached is not None:
            return cached
        assigns: list[tuple[list[ast.expr], ast.expr]] = []
        returns: list[ast.Return] = []
        for node in self._body_nodes(info):
            if isinstance(node, ast.Assign):
                assigns.append((node.targets, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assigns.append(([node.target], node.value))
            elif isinstance(node, (ast.AugAssign, ast.NamedExpr)):
                assigns.append(([node.target], node.value))
            elif isinstance(node, ast.For):
                assigns.append(([node.target], node.iter))
            elif isinstance(node, ast.Return) and node.value is not None:
                returns.append(node)
        self._taint_sites[id(info.node)] = (assigns, returns)
        return assigns, returns

    def _returns_request(self, info: FunctionInfo) -> bool:
        request_names: set[str] = set()
        for node in self._body_nodes(info):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._is_request_expr(node.value)
            ):
                request_names.add(node.targets[0].id)
        for node in self._body_nodes(info):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if self._is_request_expr(node.value):
                return True
            if isinstance(node.value, ast.Name) and \
                    node.value.id in request_names:
                return True
        return False

    def _is_request_expr(self, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        if isinstance(expr.func, ast.Attribute) and \
                expr.func.attr in ("isend", "irecv"):
            return True
        return any(
            self.functions[q].returns_request
            for q in self._call_targets.get(id(expr), ())
            if q in self.functions
        )

    # -- rank taint ----------------------------------------------------------

    def _function_taint(self, info: FunctionInfo) -> tuple[set[str], bool]:
        tainted = set(info.tainted_params)
        assigns, returns = self._body_taint_sites(info)
        for _ in range(_MAX_FIXPOINT_ITER):
            changed = False
            for targets, value in assigns:
                if not self._expr_tainted(value, tainted, info):
                    continue
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name) and sub.id not in tainted:
                            tainted.add(sub.id)
                            changed = True
            if not changed:
                break
        returns_rank = any(
            self._expr_tainted(node.value, tainted, info) for node in returns
        )
        return tainted, returns_rank

    def _expr_tainted(
        self, node: ast.expr, tainted: set[str], info: FunctionInfo
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted or node.id == "my_rank"
        if isinstance(node, ast.Attribute):
            if node.attr in ("rank", "my_rank"):
                return True
            return self._expr_tainted(node.value, tainted, info)
        if isinstance(node, ast.Subscript):
            return self._expr_tainted(node.value, tainted, info) or \
                self._expr_tainted(node.slice, tainted, info)
        if isinstance(node, ast.Call):
            for qual in self._call_targets.get(id(node), ()):
                callee = self.functions.get(qual)
                if callee is not None and callee.returns_rank:
                    return True
            if isinstance(node.func, ast.Attribute):
                # a method of a rank-derived object, or a rank-keyed
                # lookup (assignment.get(rank)), yields rank-derived data
                if self._expr_tainted(node.func.value, tainted, info):
                    return True
                if node.func.attr in ("get", "pop", "index") and any(
                    self._expr_tainted(a, tainted, info) for a in node.args
                ):
                    return True
            return False
        if isinstance(node, ast.BoolOp):
            return any(self._expr_tainted(v, tainted, info)
                       for v in node.values)
        if isinstance(node, ast.BinOp):
            return self._expr_tainted(node.left, tainted, info) or \
                self._expr_tainted(node.right, tainted, info)
        if isinstance(node, ast.UnaryOp):
            return self._expr_tainted(node.operand, tainted, info)
        if isinstance(node, ast.Compare):
            return self._expr_tainted(node.left, tainted, info) or any(
                self._expr_tainted(c, tainted, info) for c in node.comparators
            )
        if isinstance(node, ast.IfExp):
            return self._expr_tainted(node.body, tainted, info) or \
                self._expr_tainted(node.orelse, tainted, info)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._expr_tainted(e, tainted, info) for e in node.elts)
        if isinstance(node, ast.Starred):
            return self._expr_tainted(node.value, tainted, info)
        if isinstance(node, ast.JoinedStr):
            return any(
                isinstance(v, ast.FormattedValue)
                and self._expr_tainted(v.value, tainted, info)
                for v in node.values
            )
        return False

    def expr_is_rank_tainted(
        self, ctx: FileContext, node: ast.expr
    ) -> bool:
        """Is this expression rank-derived in its enclosing function?"""
        info = self.enclosing_info(ctx, node)
        if info is None:
            return False
        return self._expr_tainted(node, info.local_taint, info)


#: All registered rules by id.
REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to :data:`REGISTRY`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    REGISTRY[rule.id] = rule
    return cls


class Baseline:
    """The reviewed list of grandfathered findings.

    JSON format::

        {"version": 1,
         "entries": [{"key": "R5:repro/campaign/workers.py:WorkerPool._execute",
                      "justification": "one line on why this is deliberate"}]}

    Matching is by :attr:`Finding.key`; entries without a justification
    are rejected so the file stays a record of decisions, not a dump.
    """

    FILENAME = ".repro-analysis-baseline.json"

    def __init__(self, entries: dict[str, str] | None = None):
        self.entries: dict[str, str] = dict(entries or {})

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        entries: dict[str, str] = {}
        for entry in data.get("entries", []):
            key = entry.get("key")
            justification = entry.get("justification", "").strip()
            if not key or not justification:
                raise ValueError(
                    f"baseline entry {entry!r} needs both a key and a "
                    f"non-empty justification"
                )
            entries[key] = justification
        return cls(entries)

    @classmethod
    def discover(cls, start: str | Path) -> "Baseline | None":
        """Find and load the nearest baseline file at or above ``start``."""
        current = Path(start).resolve()
        if current.is_file():
            current = current.parent
        for directory in [current, *current.parents]:
            candidate = directory / cls.FILENAME
            if candidate.is_file():
                return cls.load(candidate)
        return None

    def matches(self, finding: Finding) -> bool:
        return finding.key in self.entries


@dataclass
class Report:
    """Outcome of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _iter_py_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def check_paths(
    paths: list[str | Path],
    baseline: Baseline | None = None,
    rule_ids: list[str] | None = None,
    select: set[str | Path] | None = None,
) -> Report:
    """Run the rule pack over files/directories and build a report.

    ``rule_ids`` restricts to a subset of the registry (unknown ids
    raise).  ``select``, when given, restricts *reporting* to those
    files (the ``--diff`` changed-files mode) — the whole-program
    :class:`Project` is still built over every file under ``paths`` so
    interprocedural facts stay complete.  Pragma- and baseline-
    suppressed findings are counted but excluded from
    ``report.findings``; files that fail to parse produce a
    non-suppressible ``parse`` finding rather than aborting the run.
    """
    # Ensure the built-in rule pack is registered even if the caller
    # imported only this module.
    from . import rules as _rules  # noqa: F401

    if rule_ids is None:
        selected = list(REGISTRY.values())
    else:
        unknown = [r for r in rule_ids if r not in REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; known: {sorted(REGISTRY)}"
            )
        selected = [REGISTRY[r] for r in rule_ids]

    selected_paths: set[str] | None = None
    if select is not None:
        selected_paths = {Path(p).resolve().as_posix() for p in select}

    def _is_selected(path: str | Path) -> bool:
        if selected_paths is None:
            return True
        return Path(path).resolve().as_posix() in selected_paths

    report = Report()
    contexts: list[FileContext] = []
    for path in _iter_py_files(paths):
        try:
            contexts.append(FileContext(path, path.read_text()))
        except SyntaxError as exc:
            if _is_selected(path):
                report.files_checked += 1
                report.findings.append(
                    Finding(
                        rule="parse",
                        path=str(path),
                        line=exc.lineno or 0,
                        scope="<module>",
                        message=f"file does not parse: {exc.msg}",
                    )
                )

    project = Project(contexts)
    for ctx in contexts:
        ctx.project = project

    file_rules = [
        r for r in selected if not getattr(r, "project_level", False)
    ]
    project_rules = [
        r for r in selected if getattr(r, "project_level", False)
    ]

    def _fold(ctx: FileContext, finding: Finding) -> None:
        if ctx.is_suppressed(finding):
            report.suppressed += 1
        elif baseline is not None and baseline.matches(finding):
            report.baselined += 1
        else:
            report.findings.append(finding)

    for ctx in contexts:
        if not _is_selected(ctx.path):
            continue
        applicable = [r for r in file_rules if r.applies_to(ctx.path)]
        if not applicable:
            continue
        report.files_checked += 1
        for rule in applicable:
            for finding in rule.check(ctx):
                _fold(ctx, finding)

    for rule in project_rules:
        for finding in rule.check_project(project):
            if not _is_selected(finding.path):
                continue
            fctx = project.context_for_path(finding.path)
            if fctx is not None:
                _fold(fctx, finding)
            elif baseline is not None and baseline.matches(finding):
                report.baselined += 1
            else:
                report.findings.append(finding)

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
