"""Framework of the domain-specific static analyzer.

Dependency-free (stdlib ``ast`` + ``tokenize``) machinery shared by the
rule pack in :mod:`repro.analysis.static.rules`:

* :class:`Rule` — base class; concrete rules declare an ``id``, a scope
  (directory names and/or path suffixes), and a ``check`` over one
  parsed file.  The :func:`register` decorator adds them to the global
  :data:`REGISTRY`.
* :class:`FileContext` — one parsed source file with an AST parent map,
  enclosing-scope lookup, and the comment-derived pragma state: ``#
  repro: disable=R1,R3 - reason`` suppresses those rules on its line
  (a standalone pragma comment suppresses the next line), and ``#
  repro: hot-loop`` on a ``def`` line marks a time-step-loop function
  for rule R3.
* :class:`Baseline` — the reviewed grandfather list.  Keys are
  ``rule:path:scope`` (line-number free, so unrelated edits do not
  invalidate them); every entry carries a one-line justification.
* :func:`check_paths` — run the (selected) rules over files/trees and
  fold pragma and baseline suppression into a :class:`Report`.

The rules are deliberately *approximate* — sound enough to catch the
bug classes that matter here, simple enough to audit.  When a rule is
wrong about a specific site, the pragma records the human judgement in
the source; when a finding is known and accepted, the baseline records
it with a justification.  Neither mechanism is silent.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "REGISTRY",
    "Report",
    "Rule",
    "check_paths",
    "normalize_path",
    "register",
]

_PRAGMA_RE = re.compile(r"#\s*repro:\s*(.+)")


def normalize_path(path: str | Path) -> str:
    """Stable, repo-relative form of a path for baseline keys.

    Starts at the first ``repro`` path component when present (so
    ``/home/x/repo/src/repro/parallel/halo.py`` and a checkout elsewhere
    produce the same key); otherwise the path is used as given.
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return PurePath(path).as_posix()


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    scope: str
    message: str

    @property
    def key(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.rule}:{normalize_path(self.path)}:{self.scope}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.scope}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "scope": self.scope,
            "message": self.message,
            "key": self.key,
        }


class FileContext:
    """One parsed file plus the lookups every rule needs."""

    def __init__(self, path: str | Path, source: str):
        self.path = Path(path)
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        #: line -> rule ids suppressed on that line.
        self.disabled: dict[int, set[str]] = {}
        #: ``def`` lines carrying the ``# repro: hot-loop`` marker.
        self.hot_lines: set[int] = set()
        self._scan_pragmas()

    def _scan_pragmas(self) -> None:
        lines = self.source.splitlines()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, IndentationError):
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _PRAGMA_RE.match(tok.string)
            if not m:
                continue
            body = m.group(1).strip()
            row = tok.start[0]
            before = lines[row - 1][: tok.start[1]] if row <= len(lines) else ""
            # A standalone pragma comment governs the next line; an
            # inline one governs its own.
            targets = [row + 1] if not before.strip() else [row]
            if body.startswith("disable="):
                spec = body[len("disable="):].split()[0]
                rules = {r.strip() for r in spec.split(",") if r.strip()}
                for t in targets:
                    self.disabled.setdefault(t, set()).update(rules)
            elif body.startswith("hot-loop"):
                for t in targets:
                    self.hot_lines.add(t)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def scope_of(self, node: ast.AST) -> str:
        """Dotted enclosing function/class name, or ``<module>``."""
        names: list[str] = []
        current: ast.AST | None = self.parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(names)) if names else "<module>"

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        current: ast.AST | None = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def is_suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.disabled.get(finding.line, set())


class Rule:
    """Base class for one analyzer rule.

    ``scope_dirs`` restricts the rule to files whose *directory* path
    contains one of the names (the basename is excluded, so a file
    merely called ``parallel.py`` is not in scope); ``scope_suffixes``
    admits specific files (e.g. ``solver/solver.py``) regardless of
    directory scope.  Empty scope means every file.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    scope_dirs: tuple[str, ...] = ()
    scope_suffixes: tuple[str, ...] = ()

    def applies_to(self, path: str | Path) -> bool:
        if not self.scope_dirs and not self.scope_suffixes:
            return True
        p = PurePath(path)
        if any(part in self.scope_dirs for part in p.parts[:-1]):
            return True
        posix = p.as_posix()
        return any(posix.endswith(suffix) for suffix in self.scope_suffixes)

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 0),
            scope=ctx.scope_of(node),
            message=message,
        )


#: All registered rules by id.
REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to :data:`REGISTRY`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    REGISTRY[rule.id] = rule
    return cls


class Baseline:
    """The reviewed list of grandfathered findings.

    JSON format::

        {"version": 1,
         "entries": [{"key": "R5:repro/campaign/workers.py:WorkerPool._execute",
                      "justification": "one line on why this is deliberate"}]}

    Matching is by :attr:`Finding.key`; entries without a justification
    are rejected so the file stays a record of decisions, not a dump.
    """

    FILENAME = ".repro-analysis-baseline.json"

    def __init__(self, entries: dict[str, str] | None = None):
        self.entries: dict[str, str] = dict(entries or {})

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        entries: dict[str, str] = {}
        for entry in data.get("entries", []):
            key = entry.get("key")
            justification = entry.get("justification", "").strip()
            if not key or not justification:
                raise ValueError(
                    f"baseline entry {entry!r} needs both a key and a "
                    f"non-empty justification"
                )
            entries[key] = justification
        return cls(entries)

    @classmethod
    def discover(cls, start: str | Path) -> "Baseline | None":
        """Find and load the nearest baseline file at or above ``start``."""
        current = Path(start).resolve()
        if current.is_file():
            current = current.parent
        for directory in [current, *current.parents]:
            candidate = directory / cls.FILENAME
            if candidate.is_file():
                return cls.load(candidate)
        return None

    def matches(self, finding: Finding) -> bool:
        return finding.key in self.entries


@dataclass
class Report:
    """Outcome of one analyzer run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _iter_py_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def check_paths(
    paths: list[str | Path],
    baseline: Baseline | None = None,
    rule_ids: list[str] | None = None,
) -> Report:
    """Run the rule pack over files/directories and build a report.

    ``rule_ids`` restricts to a subset of the registry (unknown ids
    raise).  Pragma- and baseline-suppressed findings are counted but
    excluded from ``report.findings``; files that fail to parse produce
    a non-suppressible ``parse`` finding rather than aborting the run.
    """
    # Ensure the built-in rule pack is registered even if the caller
    # imported only this module.
    from . import rules as _rules  # noqa: F401

    if rule_ids is None:
        selected = list(REGISTRY.values())
    else:
        unknown = [r for r in rule_ids if r not in REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; known: {sorted(REGISTRY)}"
            )
        selected = [REGISTRY[r] for r in rule_ids]

    report = Report()
    for path in _iter_py_files(paths):
        applicable = [r for r in selected if r.applies_to(path)]
        if not applicable:
            continue
        report.files_checked += 1
        try:
            ctx = FileContext(path, path.read_text())
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule="parse",
                    path=str(path),
                    line=exc.lineno or 0,
                    scope="<module>",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        for rule in applicable:
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding):
                    report.suppressed += 1
                elif baseline is not None and baseline.matches(finding):
                    report.baselined += 1
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
