"""Seismogram analysis: misfits, spectra, energy diagnostics."""

from .comparison import (
    arrival_time,
    relative_l2_misfit,
    time_shift_crosscorrelation,
    waveform_summary,
)
from .normal_modes import (
    make_homogeneous,
    measure_period_zero_crossings,
    toroidal_characteristic,
    toroidal_eigenfrequencies,
    toroidal_mode_displacement,
)

__all__ = [
    "arrival_time",
    "relative_l2_misfit",
    "time_shift_crosscorrelation",
    "waveform_summary",
    "make_homogeneous",
    "measure_period_zero_crossings",
    "toroidal_characteristic",
    "toroidal_eigenfrequencies",
    "toroidal_mode_displacement",
]
