"""Analysis layer: seismogram analysis, static invariants, comm sanitizer.

Three sub-areas share this package:

* seismogram analysis (:mod:`.comparison`, :mod:`.normal_modes`) —
  misfits, spectra, mode measurements, re-exported here;
* the static analyzer (:mod:`.static`) — the dependency-free rule pack
  enforcing the codebase's SPMD and numerical invariants, driven by
  ``python -m repro.analysis check`` (:mod:`.__main__`);
* the runtime comm sanitizer (:mod:`.sanitizer`) — message/request
  lifecycle checking behind ``VirtualCluster(sanitize=True)``.

The sanitizer names are re-exported; the static framework is imported
explicitly (``from repro.analysis.static import check_paths``) to keep
``import repro.analysis`` light for the common seismogram path.
"""

from .comparison import (
    arrival_time,
    relative_l2_misfit,
    time_shift_crosscorrelation,
    waveform_summary,
)
from .normal_modes import (
    make_homogeneous,
    measure_period_zero_crossings,
    toroidal_characteristic,
    toroidal_eigenfrequencies,
    toroidal_mode_displacement,
)
from .sanitizer import (
    CommSanitizer,
    CommSanitizerError,
    SanitizerComm,
    SanitizerFinding,
    SanitizerReport,
)

__all__ = [
    "CommSanitizer",
    "CommSanitizerError",
    "SanitizerComm",
    "SanitizerFinding",
    "SanitizerReport",
    "arrival_time",
    "relative_l2_misfit",
    "time_shift_crosscorrelation",
    "waveform_summary",
    "make_homogeneous",
    "measure_period_zero_crossings",
    "toroidal_characteristic",
    "toroidal_eigenfrequencies",
    "toroidal_mode_displacement",
]
