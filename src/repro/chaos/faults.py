"""Deterministic fault injection for the virtual cluster.

The paper's 62K-core production runs survive (or die by) hung ranks,
lost messages, and corrupted restart files.  This module makes those
failures *reproducible*: a :class:`FaultPlan` is a seeded, serializable
list of :class:`FaultSpec` entries, and a :class:`ChaosComm` wraps one
rank's :class:`~repro.parallel.comm.VirtualComm` to apply them — drop,
delay, duplicate, or bit-flip a message, or crash/stall the rank when a
matching operation occurs.  Because the wrapper sits at the communicator
API, both the blocking halo exchange and the overlapped
``isend``/``irecv``/``waitall`` path (:mod:`repro.parallel.halo`) are
attackable without modification.

Trigger semantics are count-based and therefore deterministic: a spec
matches operations by (rank, op kind, tag, peer) and fires on the
``after_matches``-th match (0-based), up to ``max_fires`` times.  The
plan records every fired fault in ``plan.events`` and, when a metrics
registry is attached, as ``chaos.faults.<kind>`` counters — so drills
show up in the same observability stream as the run they disturb.

Firing state lives on the plan, not the cluster: a retried attempt that
reuses the same plan does *not* re-fire exhausted faults, which is
exactly the transient-failure model the campaign retry policy is built
for (fail once, succeed on resubmission).  Call :meth:`FaultPlan.reset`
to rearm a plan for a fresh drill.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from ..obs.metrics import MetricsRegistry
    from ..parallel.comm import RecvRequest, SendRequest

__all__ = [
    "FAULT_KINDS",
    "COMM_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "ChaosComm",
    "InjectedRankCrash",
]

#: Message-level faults applied by :class:`ChaosComm` at send/recv time.
COMM_FAULT_KINDS = ("drop", "delay", "duplicate", "bitflip", "crash", "stall")

#: All fault kinds; ``poison`` is a solver-side fault (NaN written into a
#: field at a chosen step) applied through :meth:`FaultPlan.solver_callback`.
FAULT_KINDS = COMM_FAULT_KINDS + ("poison",)

_OPS = ("send", "recv", "any")


class InjectedRankCrash(RuntimeError):
    """A ``crash`` fault fired: the rank dies mid-operation.

    Deliberately *not* a typed parallel error — the launcher wraps it in
    :class:`~repro.parallel.errors.RankFailedError` exactly as it would
    any other unexpected rank death, so the retry path under test sees
    the same exception a real failure produces.
    """


@dataclass
class FaultSpec:
    """One injectable fault.

    Parameters
    ----------
    kind : one of :data:`FAULT_KINDS`.
    rank : the rank whose endpoint (or solver) carries the fault.
    op : ``send``/``recv``/``any`` — which communicator operations the
        spec matches (ignored for ``poison``).
    tag : match only operations with this message tag (None = any).
    peer : match only this destination/source rank (None = any).
    after_matches : fire on the (``after_matches`` + 1)-th matching
        operation — the deterministic "at a chosen step" trigger (each
        halo round produces a fixed, schedule-independent count of
        matching operations per tag).
    max_fires : how many times the spec may fire (1 = a transient fault
        that a retried attempt survives).
    delay_s : sleep applied by ``delay`` (before the op proceeds) and
        ``stall`` (the rank hangs long enough for peers' per-receive
        deadlines to expire).
    bit : bit index flipped by ``bitflip`` within the payload bytes;
        -1 picks a position from the plan's seeded RNG.
    step, region : solver-side triggers.  For ``poison`` (``step``
        required) a NaN is written into the displacement field (of
        ``region``, or the first solid region when None) after that
        step.  A ``crash`` with ``step`` set fires through the solver
        callback instead of the communicator: the rank raises
        :class:`InjectedRankCrash` right after completing that step —
        the deterministic "rank dies at step N" trigger the resilience
        drills and the respawn-recovery property test are built on.
    """

    kind: str
    rank: int
    op: str = "any"
    tag: int | None = None
    peer: int | None = None
    after_matches: int = 0
    max_fires: int = 1
    delay_s: float = 0.0
    bit: int = 0
    step: int | None = None
    region: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.op not in _OPS:
            raise ValueError(f"fault op must be one of {_OPS}, got {self.op!r}")
        if self.rank < 0:
            raise ValueError(f"fault rank must be >= 0, got {self.rank}")
        if self.after_matches < 0 or self.max_fires < 1:
            raise ValueError("after_matches must be >= 0 and max_fires >= 1")
        if self.kind == "poison" and self.step is None:
            raise ValueError("poison faults need a step")

    def matches_op(self, rank: int, op: str, tag: int, peer: int) -> bool:
        """Does this spec match one communicator operation?

        Solver-side specs never match here: ``poison`` always fires via
        the step callback, and so does a ``crash`` carrying a ``step``
        (a step-pinned crash must not fire early on message traffic).
        """
        if self.kind == "poison" or rank != self.rank:
            return False
        if self.kind == "crash" and self.step is not None:
            return False
        if self.op != "any" and self.op != op:
            return False
        if self.tag is not None and self.tag != tag:
            return False
        if self.peer is not None and self.peer != peer:
            return False
        return True


class FaultPlan:
    """A seeded, deterministic, serializable set of faults plus their
    firing state.

    The plan is the single artifact of a chaos drill: build it (or load
    it from JSON), hand it to ``VirtualCluster(fault_plan=plan)`` or
    ``run_distributed_simulation(fault_plan=plan)``, and read
    ``plan.events`` afterwards to see exactly what fired where.
    """

    def __init__(self, specs: list[FaultSpec] | None = None, seed: int = 0):
        self.specs: list[FaultSpec] = list(specs or [])
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._match_counts: dict[int, int] = {}
        self._fire_counts: dict[int, int] = {}
        #: Every fired fault as a dict (spec index, kind, rank, op, tag).
        self.events: list[dict] = []
        self.metrics: "MetricsRegistry | None" = None

    # -- construction helpers ------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def attach_metrics(self, registry: "MetricsRegistry | None") -> "FaultPlan":
        """Count fired faults as ``chaos.faults.<kind>`` in ``registry``."""
        self.metrics = registry
        return self

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [asdict(s) for s in self.specs],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            specs=[FaultSpec(**s) for s in d.get("specs", [])],
            seed=int(d.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- firing --------------------------------------------------------------

    def reset(self) -> None:
        """Rearm every spec (fresh drill; the event log is cleared too)."""
        with self._lock:
            self._match_counts.clear()
            self._fire_counts.clear()
            self.events.clear()
            self._rng = random.Random(self.seed)

    def fired(self, index: int) -> int:
        with self._lock:
            return self._fire_counts.get(index, 0)

    @property
    def total_fired(self) -> int:
        with self._lock:
            return sum(self._fire_counts.values())

    def _record(self, index: int, spec: FaultSpec, **info) -> None:
        # Called with the lock held.
        self._fire_counts[index] = self._fire_counts.get(index, 0) + 1
        event = {"spec": index, "kind": spec.kind, "rank": spec.rank, **info}
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.counter(f"chaos.faults.{spec.kind}").add(1)
            self.metrics.counter("chaos.faults.total").add(1)

    def match_op(
        self, rank: int, op: str, tag: int, peer: int
    ) -> list[FaultSpec]:
        """Record one communicator operation; return the specs that fire.

        Thread-safe: rank programs run on threads and consult the shared
        plan concurrently.
        """
        fired: list[FaultSpec] = []
        with self._lock:
            for index, spec in enumerate(self.specs):
                if not spec.matches_op(rank, op, tag, peer):
                    continue
                seen = self._match_counts.get(index, 0)
                self._match_counts[index] = seen + 1
                if seen < spec.after_matches:
                    continue
                if self._fire_counts.get(index, 0) >= spec.max_fires:
                    continue
                self._record(index, spec, op=op, tag=tag, peer=peer)
                fired.append(spec)
        return fired

    def pick_bit(self, nbytes: int, spec: FaultSpec) -> int:
        """Resolve a bitflip position (seeded when ``spec.bit`` is -1)."""
        nbits = max(1, nbytes * 8)
        if spec.bit >= 0:
            return spec.bit % nbits
        with self._lock:
            return self._rng.randrange(nbits)

    # -- solver-side faults --------------------------------------------------

    def solver_callback(self, rank: int = 0) -> "Callable[[int, object], None]":
        """A ``cb(step, solver)`` applying this plan's solver-side faults.

        Pass it through ``GlobalSolver.run(callbacks=[...])`` (the
        distributed launcher wires it in automatically whenever a plan
        is armed).  After the matching step completes, a ``poison`` spec
        writes a NaN into the displacement field of the chosen region —
        the blow-up the :class:`~repro.chaos.sentinel.HealthSentinel`
        must catch within one check interval — and a step-pinned
        ``crash`` spec raises :class:`InjectedRankCrash`, killing the
        rank at a deterministic step (the trigger the resilience
        recovery drills use).
        """

        def fire(step: int, solver) -> None:
            with self._lock:
                due = [
                    (i, s)
                    for i, s in enumerate(self.specs)
                    if s.kind in ("poison", "crash")
                    and s.rank == rank
                    and s.step == step
                    and self._fire_counts.get(i, 0) < s.max_fires
                ]
                for index, spec in due:
                    self._record(index, spec, step=step)
            # Apply outside the lock: the crash raise must not wedge
            # other ranks' concurrent plan lookups.
            for _index, spec in due:
                if spec.kind == "crash":
                    raise InjectedRankCrash(
                        f"rank {rank}: injected crash after step {step}"
                    )
                region = spec.region
                if region is None:
                    region = solver.solid_codes[0]
                solver.solid[region].displ[0, 0] = np.nan

        return fire


class ChaosComm:
    """A fault-injecting wrapper around one rank's ``VirtualComm``.

    Send-side faults (``drop``/``delay``/``duplicate``/``bitflip``)
    mutate the message stream; ``crash`` raises
    :class:`InjectedRankCrash` and ``stall`` sleeps through the peers'
    per-receive deadline.  Receive-side matching covers both blocking
    ``recv`` and the ``irecv``/``wait`` path (requests are bound to this
    wrapper, so a posted receive completed inside ``waitall`` still
    consults the plan).  Everything unrelated to fault injection —
    accounting, collectives, attributes like ``stats`` — delegates to
    the wrapped communicator untouched.
    """

    def __init__(self, comm, plan: FaultPlan) -> None:
        self._comm = comm
        self._plan = plan

    def __getattr__(self, name: str):
        return getattr(self._comm, name)

    # -- fault application ---------------------------------------------------

    def _apply_common(self, fired: list[FaultSpec]) -> None:
        """Handle crash/stall/delay (shared by send and recv paths)."""
        for spec in fired:
            if spec.kind == "crash":
                raise InjectedRankCrash(
                    f"rank {self._comm.rank}: injected crash"
                )
            if spec.kind in ("stall", "delay") and spec.delay_s > 0:
                time.sleep(spec.delay_s)

    # -- point to point ------------------------------------------------------

    def send(self, dest: int, payload, tag: int = 0) -> None:
        fired = self._plan.match_op(self._comm.rank, "send", tag, dest)
        if not fired:
            return self._comm.send(dest, payload, tag=tag)
        self._apply_common(fired)
        drop = any(s.kind == "drop" for s in fired)
        duplicate = any(s.kind == "duplicate" for s in fired)
        for spec in fired:
            if spec.kind == "bitflip":
                payload = np.array(payload, copy=True)
                raw = payload.view(np.uint8).reshape(-1)
                pos = self._plan.pick_bit(raw.size, spec)
                raw[pos // 8] ^= np.uint8(1 << (pos % 8))
        if drop:
            return None  # the message vanishes; the peer's recv times out
        self._comm.send(dest, payload, tag=tag)
        if duplicate:
            self._comm.send(dest, payload, tag=tag)
        return None

    def isend(self, dest: int, payload, tag: int = 0) -> "SendRequest":
        from ..parallel.comm import SendRequest

        self.send(dest, payload, tag=tag)
        return SendRequest()

    def recv(
        self, source: int, tag: int = 0, timeout: float | None = None
    ) -> np.ndarray:
        return self._complete_recv(source, tag, timeout)

    def irecv(self, source: int, tag: int = 0) -> "RecvRequest":
        from ..parallel.comm import RecvRequest

        # Bound to *this* wrapper: the eventual wait() funnels through
        # _complete_recv below, so recv-side faults hit the overlapped
        # path exactly like the blocking one.
        return RecvRequest(self, source, tag)

    def _complete_recv(
        self, source: int, tag: int, timeout: float | None
    ) -> np.ndarray:
        fired = self._plan.match_op(self._comm.rank, "recv", tag, source)
        if fired:
            self._apply_common(fired)
        return self._comm._complete_recv(source, tag, timeout)

    def sendrecv(self, dest: int, payload, source: int, tag: int = 0):
        self.send(dest, payload, tag=tag)
        return self.recv(source, tag)

    def waitall(self, requests: list, timeout: float | None = None) -> list:
        return [req.wait(timeout) for req in requests]
