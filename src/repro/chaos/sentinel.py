"""Numerical health sentinel: catch a blow-up before it poisons outputs.

A CFL violation or an injected NaN does not stop an explicit time loop —
it silently floods the wavefield, the seismograms, and the next
checkpoint with garbage, and a retry policy that cannot tell this from a
lost node will happily re-run the same divergence three times.  The
:class:`HealthSentinel` is the detection half of the chaos subsystem:
called every ``check_every`` steps from ``GlobalSolver.run``, it scans
the displacement/velocity/potential fields for non-finite values,
amplitude blow-up, and runaway kinetic-energy growth, and raises a typed
:class:`NumericalHealthError` carrying a :class:`HealthSnapshot` (step,
per-region max amplitudes, offending rank) that the campaign layer
persists into the job's provenance record.

Deterministic numerical faults are *not* transient: the campaign
:class:`~repro.campaign.queue.RetryPolicy` classifies
:class:`NumericalHealthError` as fail-fast, so a diverging job fails
once, with diagnostics, instead of burning its whole retry budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["HealthSnapshot", "NumericalHealthError", "HealthSentinel"]


@dataclass
class HealthSnapshot:
    """Diagnostic state captured at the moment a health check fails."""

    step: int
    rank: int
    reason: str  # "nonfinite" | "amplitude" | "energy_growth"
    detail: str = ""
    max_displacement_m: dict[str, float] = field(default_factory=dict)
    max_velocity_ms: dict[str, float] = field(default_factory=dict)
    kinetic_energy_j: float = 0.0

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "rank": self.rank,
            "reason": self.reason,
            "detail": self.detail,
            "max_displacement_m": dict(self.max_displacement_m),
            "max_velocity_ms": dict(self.max_velocity_ms),
            "kinetic_energy_j": self.kinetic_energy_j,
        }


class NumericalHealthError(RuntimeError):
    """The solution diverged (NaN/Inf, amplitude or energy blow-up).

    Deterministic — the same inputs diverge the same way — so the retry
    policy fails fast instead of retrying.  ``snapshot`` carries the
    diagnostic state for the campaign manifest.
    """

    def __init__(self, message: str, snapshot: HealthSnapshot):
        super().__init__(message)
        self.snapshot = snapshot


def _region_name(code: int) -> str:
    from ..model.prem import RegionCode

    return RegionCode.NAMES.get(code, str(code))


class HealthSentinel:
    """Periodic field-health checks for one solver (one rank).

    Parameters
    ----------
    check_every : steps between checks.  A blown-up field is caught at
        most one interval after it appears; each check costs one
        max-abs scan per region (O(nglob), trivially cheap next to a
        force evaluation — the ``benchmarks/test_chaos_overhead.py``
        guard pins this below 3% of solver wall time).
    max_displacement_m : absolute amplitude ceiling; a physically
        plausible global simulation stays far below the 1e9 m default,
        while a CFL violation crosses it within a few checks.
    energy_growth_factor : ceiling on kinetic energy relative to the
        largest value seen in the first ``baseline_checks`` checks —
        explicit-scheme divergence grows exponentially, legitimate
        post-source energy does not.
    baseline_checks : checks used to establish the energy baseline.
    rank : attached to snapshots (virtual MPI rank; 0 for serial runs).
    """

    def __init__(
        self,
        check_every: int = 25,
        max_displacement_m: float = 1e9,
        energy_growth_factor: float = 1e8,
        baseline_checks: int = 3,
        rank: int = 0,
    ):
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        if max_displacement_m <= 0 or energy_growth_factor <= 1:
            raise ValueError(
                "max_displacement_m must be positive and "
                "energy_growth_factor > 1"
            )
        self.check_every = int(check_every)
        self.max_displacement_m = float(max_displacement_m)
        self.energy_growth_factor = float(energy_growth_factor)
        self.baseline_checks = int(baseline_checks)
        self.rank = rank
        self.checks = 0
        self._energy_baseline = 0.0
        self._baseline_seen = 0
        #: Latest values observed by :meth:`check` (NaN before the first
        #: check) — the streaming telemetry samples these per step, so
        #: health signals reach the live channel without re-scanning.
        self.last_peak_m = math.nan
        self.last_energy_j = math.nan

    def due(self, step: int) -> bool:
        """Check after ``step`` completes? (0-based; every Nth step.)"""
        return (step + 1) % self.check_every == 0

    def _snapshot(self, solver, step: int, reason: str, detail: str,
                  energy: float) -> HealthSnapshot:
        max_d: dict[str, float] = {}
        max_v: dict[str, float] = {}
        for code in solver.solid_codes:
            f = solver.solid[code]
            name = _region_name(code)
            max_d[name] = float(np.max(np.abs(f.displ)))
            max_v[name] = float(np.max(np.abs(f.veloc)))
        if solver.fluid is not None:
            name = _region_name(solver.fluid_code)
            max_d[name] = float(np.max(np.abs(solver.fluid.chi)))
            max_v[name] = float(np.max(np.abs(solver.fluid.chi_dot)))
        return HealthSnapshot(
            step=step,
            rank=self.rank,
            reason=reason,
            detail=detail,
            max_displacement_m=max_d,
            max_velocity_ms=max_v,
            kinetic_energy_j=energy,
        )

    def check(self, solver, step: int) -> None:
        """Raise :class:`NumericalHealthError` if the state is unhealthy.

        One pass per region: the max-abs reduction both detects blow-up
        and, because NaN/Inf propagate through ``max``, non-finite
        values — no separate ``isfinite`` sweep of the full field.
        """
        self.checks += 1
        worst = 0.0
        for code in solver.solid_codes:
            f = solver.solid[code]
            for label, arr in (("displ", f.displ), ("veloc", f.veloc)):
                peak = float(np.max(np.abs(arr)))
                if not math.isfinite(peak):
                    raise NumericalHealthError(
                        f"step {step}: non-finite {label} in region "
                        f"{_region_name(code)} (rank {self.rank})",
                        self._snapshot(solver, step, "nonfinite",
                                       f"{label}/{_region_name(code)}", 0.0),
                    )
                worst = max(worst, peak)
        self.last_peak_m = worst
        if solver.fluid is not None:
            peak = float(np.max(np.abs(solver.fluid.chi)))
            if not math.isfinite(peak):
                raise NumericalHealthError(
                    f"step {step}: non-finite fluid potential "
                    f"(rank {self.rank})",
                    self._snapshot(solver, step, "nonfinite", "chi", 0.0),
                )
        if worst > self.max_displacement_m:
            raise NumericalHealthError(
                f"step {step}: displacement amplitude {worst:.3e} m exceeds "
                f"the {self.max_displacement_m:.1e} m ceiling "
                f"(rank {self.rank})",
                self._snapshot(solver, step, "amplitude",
                               f"{worst:.3e} m", 0.0),
            )
        energy = solver._total_kinetic_energy()
        self.last_energy_j = energy
        if not math.isfinite(energy):
            raise NumericalHealthError(
                f"step {step}: non-finite kinetic energy (rank {self.rank})",
                self._snapshot(solver, step, "nonfinite", "energy", energy),
            )
        if self._baseline_seen < self.baseline_checks:
            self._energy_baseline = max(self._energy_baseline, energy)
            self._baseline_seen += 1
        elif (
            self._energy_baseline > 0.0
            and energy > self.energy_growth_factor * self._energy_baseline
        ):
            raise NumericalHealthError(
                f"step {step}: kinetic energy {energy:.3e} J grew past "
                f"{self.energy_growth_factor:.1e}x the baseline "
                f"{self._energy_baseline:.3e} J (rank {self.rank})",
                self._snapshot(solver, step, "energy_growth",
                               f"{energy:.3e} J", energy),
            )
