"""Unified chaos CLI: ``python -m repro.chaos drill <name>``.

One entry point for every end-to-end chaos drill — the same loop CI
runs, callable locally with one command instead of hunting for example
scripts:

.. code-block:: console

    $ python -m repro.chaos drill all
    $ python -m repro.chaos drill comm --schedule overlapped
    $ python -m repro.chaos drill rank-death --mode shrink
    $ python -m repro.chaos drill checkpoint --out my_reports/

Each drill runs a small fixed scenario (coarse 6- or 24-rank mesh,
seconds of wall time), prints a PASS/FAIL line, and writes its
:class:`~repro.chaos.drill.DrillReport` JSON into the output directory
(the artifact CI uploads on failure).  Exit status is non-zero when any
requested drill fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..config.parameters import SimulationParameters
from .drill import (
    DrillReport,
    run_checkpoint_drill,
    run_comm_drill,
    run_rank_death_drill,
    run_service_drill,
)
from .faults import FaultPlan, FaultSpec

DRILLS = ("comm", "checkpoint", "service", "rank-death")

#: Halo schedules a schedule-parametrised drill can run under.
SCHEDULES = {"blocking": (False,), "overlapped": (True,),
             "both": (False, True)}
#: Recovery modes the rank-death drill can run under.
MODES = {"respawn": ("respawn",), "shrink": ("shrink",),
         "both": ("respawn", "shrink")}


def demo_params(**overrides) -> SimulationParameters:
    """The drills' standard coarse mesh: 6 ranks, seconds per run."""
    defaults = dict(
        nex_xi=4,
        nproc_xi=1,
        ner_crust_mantle=2,
        ner_outer_core=1,
        ner_inner_core=1,
        nstep_override=10,
    )
    defaults.update(overrides)
    return SimulationParameters(**defaults)


def drop_and_crash_plan() -> FaultPlan:
    """The CI comm-drill plan: one lost message, one rank crash."""
    return FaultPlan(
        [
            FaultSpec(kind="drop", rank=2, op="send", after_matches=3),
            FaultSpec(kind="crash", rank=4, op="send", after_matches=5),
        ],
        seed=123,
    )


def _default_sources_stations():
    from ..apps import default_source, default_stations

    return [default_source()], default_stations()


def _run_comm(schedules) -> list[tuple[str, DrillReport]]:
    sources, stations = _default_sources_stations()
    out = []
    for overlap in schedules:
        schedule = "overlapped" if overlap else "blocking"
        print(f"== comm drill ({schedule} halo schedule) ==")
        report = run_comm_drill(
            demo_params(nstep_override=8),
            drop_and_crash_plan(),
            sources=sources,
            stations=stations,
            overlap=overlap,
            max_attempts=4,
            recv_timeout_s=1.0,
        )
        print(
            f"   attempts={report.attempts}"
            f" faults_fired={report.faults_fired}"
            f" bit_identical={report.bit_identical} -> "
            + ("PASS" if report.passed else "FAIL")
        )
        out.append((f"comm_{schedule}", report))
    return out


def _run_checkpoint(_schedules) -> list[tuple[str, DrillReport]]:
    sources, stations = _default_sources_stations()
    print("== checkpoint drill (corrupt segment 0 of 3) ==")
    report = run_checkpoint_drill(
        demo_params(nstep_override=12),
        sources=sources,
        stations=stations,
        n_segments=3,
        corrupt_segment=0,
    )
    print(
        f"   fallbacks={report.detail.get('fallbacks')}"
        f" bit_identical={report.bit_identical} -> "
        + ("PASS" if report.passed else "FAIL")
    )
    return [("checkpoint", report)]


def _run_service(_schedules) -> list[tuple[str, DrillReport]]:
    print("== service drill (backend fault + corrupt cache payload) ==")
    report = run_service_drill(
        demo_params(nstep_override=8),
        source={"position": [0.0, 0.0, 6171.0]},
        inject_failures=1,
    )
    print(
        f"   faults_fired={report.faults_fired}"
        f" statuses={report.detail.get('statuses')}"
        f" bit_identical={report.bit_identical} -> "
        + ("PASS" if report.passed else "FAIL")
    )
    return [("service", report)]


def _run_rank_death(schedules, modes) -> list[tuple[str, DrillReport]]:
    sources, stations = _default_sources_stations()
    out = []
    for mode in modes:
        # Shrink needs a world with somewhere to shrink *to* (24 -> 6
        # ranks); respawn runs on the standard 6-rank mesh.
        params = (
            demo_params(nex_xi=8, nproc_xi=2, nstep_override=8)
            if mode == "shrink"
            else demo_params()
        )
        for overlap in schedules:
            schedule = "overlapped" if overlap else "blocking"
            print(f"== rank-death drill ({mode}, {schedule} schedule) ==")
            report = run_rank_death_drill(
                params,
                sources=sources,
                stations=stations,
                crash_rank=2,
                mode=mode,
                overlap=overlap,
            )
            latency = report.detail.get("recovery_latency_s", [])
            print(
                f"   recoveries={report.detail.get('recoveries')}"
                f" world_sizes={report.detail.get('world_sizes')}"
                f" recovery_latency_s="
                f"{[round(s, 3) for s in latency]}"
                f" bit_identical={report.bit_identical} -> "
                + ("PASS" if report.passed else "FAIL")
            )
            out.append((f"rank_death_{mode}_{schedule}", report))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="run end-to-end chaos drills",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    drill = sub.add_parser("drill", help="run one drill (or all)")
    drill.add_argument("name", choices=DRILLS + ("all",))
    drill.add_argument(
        "--out",
        default="chaos_drill_output",
        help="directory for the DrillReport JSON artifacts",
    )
    drill.add_argument(
        "--schedule",
        choices=sorted(SCHEDULES),
        default="both",
        help="halo schedule(s) for schedule-parametrised drills",
    )
    drill.add_argument(
        "--mode",
        choices=sorted(MODES),
        default="respawn",
        help="recovery mode(s) for the rank-death drill",
    )
    args = parser.parse_args(argv)

    schedules = SCHEDULES[args.schedule]
    reports: list[tuple[str, DrillReport]] = []
    if args.name in ("comm", "all"):
        reports.extend(_run_comm(schedules))
    if args.name in ("checkpoint", "all"):
        reports.extend(_run_checkpoint(schedules))
    if args.name in ("service", "all"):
        reports.extend(_run_service(schedules))
    if args.name in ("rank-death", "all"):
        reports.extend(_run_rank_death(schedules, MODES[args.mode]))

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    failed = [name for name, r in reports if not r.passed]
    for name, r in reports:
        path = out_dir / f"{name}_report.json"
        path.write_text(json.dumps(r.to_dict(), indent=2))
        print(f"wrote {path}")
    if failed:
        print(f"FAILED drills: {', '.join(failed)}")
        return 1
    print("all drills recovered within their contracts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
