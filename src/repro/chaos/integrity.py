"""End-to-end integrity verification: CRC32 checksums for NPZ artifacts.

Restart files and mesh-cache spills are the long-lived state of a
campaign; a bit flipped on disk (or a partial write the zip layer
happens not to notice) must be *detected at load time*, not discovered
as garbage seismograms a week later.  This module provides the shared
checksum machinery: :func:`array_checksums` fingerprints every array of
an NPZ payload with CRC32, :func:`verify_checksums` re-checks them on
load, and the writers (:mod:`repro.solver.checkpoint` format v3,
:func:`repro.campaign.mesh_cache.save_mesh_npz`) embed the map as a
JSON member named :data:`INTEGRITY_KEY`.

Failures are typed per consumer: a corrupt checkpoint raises
``CheckpointCorruptionError`` (defined next to ``CheckpointError`` in
:mod:`repro.solver.checkpoint`, subclassing both it and
:class:`IntegrityError`); a corrupt cache spill raises
:class:`CacheCorruptionError`, which the cache quarantines and treats
as a miss.  :func:`flip_bit` is the drill-side tool: deterministic
single-bit file corruption for tests and the CI chaos drill.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np

__all__ = [
    "INTEGRITY_KEY",
    "IntegrityError",
    "CacheCorruptionError",
    "array_checksums",
    "verify_checksums",
    "checksum_payload",
    "parse_checksum_payload",
    "flip_bit",
]

#: NPZ member under which the JSON checksum map is stored.
INTEGRITY_KEY = "integrity_json"


class IntegrityError(ValueError):
    """Stored data does not match its recorded checksum."""


class CacheCorruptionError(IntegrityError):
    """A mesh-cache NPZ spill is corrupt (quarantined, treated as a miss)."""


def _crc32(array: np.ndarray) -> int:
    data = np.ascontiguousarray(array)
    return zlib.crc32(data.tobytes()) & 0xFFFFFFFF


def array_checksums(arrays: dict[str, np.ndarray]) -> dict[str, int]:
    """CRC32 of every array's raw bytes (the integrity map to embed)."""
    return {
        name: _crc32(np.asarray(value))
        for name, value in arrays.items()
        if name != INTEGRITY_KEY
    }


def checksum_payload(arrays: dict[str, np.ndarray]) -> np.ndarray:
    """The :data:`INTEGRITY_KEY` member: the checksum map as a JSON array."""
    return np.asarray(json.dumps(array_checksums(arrays), sort_keys=True))


def parse_checksum_payload(value: np.ndarray | str) -> dict[str, int]:
    try:
        return {str(k): int(v) for k, v in json.loads(str(value)).items()}
    except (json.JSONDecodeError, AttributeError, TypeError) as exc:
        raise IntegrityError(f"unreadable integrity map: {exc}") from exc


def verify_checksums(
    arrays: dict[str, np.ndarray], expected: dict[str, int]
) -> None:
    """Raise :class:`IntegrityError` naming every mismatched array.

    Arrays missing from ``expected`` (or vice versa) count as mismatches
    too — a truncated member set is corruption, not a format variant.
    """
    actual = array_checksums(arrays)
    bad = sorted(
        set(actual) ^ set(expected)
        | {name for name in set(actual) & set(expected)
           if actual[name] != expected[name]}
    )
    if bad:
        raise IntegrityError(
            f"CRC32 mismatch for array(s): {', '.join(bad)}"
        )


def flip_bit(path: str | Path, bit: int = 0) -> Path:
    """Flip one bit of a file in place (deterministic drill corruption).

    ``bit`` indexes into the file's bits modulo its size; the middle of
    the file (compressed array data rather than zip headers) is a good
    target: ``flip_bit(p, bit=8 * (size // 2))``.
    """
    path = Path(path)
    raw = bytearray(path.read_bytes())
    if not raw:
        raise ValueError(f"cannot corrupt empty file {path}")
    pos = bit % (len(raw) * 8)
    raw[pos // 8] ^= 1 << (pos % 8)
    path.write_bytes(bytes(raw))
    return path
