"""Chaos engineering for the virtual cluster.

Production-scale runs of the paper's class ("about 1 week ... of
dedicated 32K or more processor supercomputer time") fail in three
characteristic ways: the machine loses messages or ranks, the numerics
diverge, and long-lived artifacts rot on disk.  This package makes all
three *testable* on the virtual cluster, as three coupled layers:

* **injection** (:mod:`~repro.chaos.faults`) — seeded, deterministic,
  serializable :class:`FaultPlan`\\ s applied by a :class:`ChaosComm`
  wrapper at the communicator API, so both halo schedules are
  attackable unmodified;
* **detection** (:mod:`~repro.chaos.sentinel`,
  :mod:`~repro.chaos.integrity`) — the periodic numerical
  :class:`HealthSentinel` in the solver loop, and CRC32 verification of
  checkpoints (format v3) and mesh-cache spills at load time;
* **containment** — typed-error classification in the campaign
  :class:`~repro.campaign.queue.RetryPolicy` (transient comm faults
  retry; deterministic numerical/corruption faults fail fast with a
  diagnostic snapshot in the job manifest) and the segmented executor's
  fallback to the last *verified* checkpoint.

:mod:`~repro.chaos.drill` closes the loop: end-to-end drills that
inject, recover, and assert the recovered seismograms are bit-identical
to an undisturbed run.
"""

from .drill import (
    DrillReport,
    run_checkpoint_drill,
    run_comm_drill,
    run_rank_death_drill,
    run_service_drill,
)
from .faults import (
    COMM_FAULT_KINDS,
    FAULT_KINDS,
    ChaosComm,
    FaultPlan,
    FaultSpec,
    InjectedRankCrash,
)
from .integrity import (
    CacheCorruptionError,
    IntegrityError,
    array_checksums,
    flip_bit,
    verify_checksums,
)
from .sentinel import HealthSentinel, HealthSnapshot, NumericalHealthError

__all__ = [
    "COMM_FAULT_KINDS",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "ChaosComm",
    "InjectedRankCrash",
    "HealthSentinel",
    "HealthSnapshot",
    "NumericalHealthError",
    "IntegrityError",
    "CacheCorruptionError",
    "CheckpointCorruptionError",
    "array_checksums",
    "verify_checksums",
    "flip_bit",
    "DrillReport",
    "run_comm_drill",
    "run_checkpoint_drill",
    "run_service_drill",
    "run_rank_death_drill",
]


def __getattr__(name: str):
    # Lazy re-export: checkpoint.py imports chaos.integrity, so an eager
    # import here would be circular whenever the solver package pulls in
    # checkpointing during chaos's own initialisation.
    if name == "CheckpointCorruptionError":
        from ..solver.checkpoint import CheckpointCorruptionError

        return CheckpointCorruptionError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
