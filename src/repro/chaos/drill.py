"""End-to-end chaos drills: inject faults, recover, prove bit-identity.

A *drill* is the full loop the chaos subsystem exists for: run a
simulation undisturbed, run it again under a seeded
:class:`~repro.chaos.faults.FaultPlan` (and/or deliberate checkpoint
corruption), let the containment machinery recover — retries for
transient comm faults, last-verified-checkpoint fallback for corrupt
restarts — and assert the recovered seismograms are **bit-identical** to
the undisturbed run.  Determinism is the property under test: recovery
that changes the physics is not recovery.

Three drills cover the three failure surfaces:

* :func:`run_comm_drill` — message drops / rank crashes during a
  distributed run, recovered by the retry loop (works in both the
  blocking and the overlapped halo schedule);
* :func:`run_checkpoint_drill` — a bit flipped in a mid-run checkpoint,
  recovered by the segmented executor's fallback to the last verified
  checkpoint;
* :func:`run_service_drill` — a transient backend fault plus a
  corrupted cache payload behind the serving tier, both absorbed by the
  campaign retry loop and the store's quarantine-and-recompute without
  the client ever seeing an error;
* :func:`run_rank_death_drill` — a rank killed mid-epoch under the
  :class:`~repro.resilience.supervisor.RunSupervisor`, recovered
  *in-run* from per-rank checkpoints: respawn recovery must be
  bit-identical, shrink recovery (state remapped onto a smaller world)
  must match within a floating-point assembly tolerance.

Each returns a :class:`DrillReport` whose :meth:`~DrillReport.to_dict`
is what the CI chaos step writes as its artifact.  All four are
runnable from the command line: ``python -m repro.chaos drill <name>``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .faults import FaultPlan

__all__ = [
    "DrillReport",
    "run_comm_drill",
    "run_checkpoint_drill",
    "run_service_drill",
    "run_rank_death_drill",
]

#: Relative tolerance for shrink-recovery seismogram comparison; shrink
#: crosses partitions where multi-owner global points can differ in the
#: last ulps of the floating-point assembly order (see
#: repro/resilience/remap.py), so bit-identity is not the contract.
SHRINK_RTOL = 1e-9


@dataclass
class DrillReport:
    """Outcome of one chaos drill (the CI artifact payload)."""

    drill: str
    passed: bool
    bit_identical: bool
    attempts: int
    faults_fired: int
    fault_events: list[dict] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    detail: dict = field(default_factory=dict)
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "drill": self.drill,
            "passed": self.passed,
            "bit_identical": self.bit_identical,
            "attempts": self.attempts,
            "faults_fired": self.faults_fired,
            "fault_events": list(self.fault_events),
            "errors": list(self.errors),
            "detail": dict(self.detail),
            "wall_s": self.wall_s,
        }


def _bit_identical(a: np.ndarray | None, b: np.ndarray | None) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return a.shape == b.shape and bool(np.array_equal(a, b))


def run_comm_drill(
    params,
    plan: FaultPlan,
    sources: list | None = None,
    stations: list | None = None,
    n_steps: int | None = None,
    overlap: bool | None = None,
    max_attempts: int = 3,
    recv_timeout_s: float = 2.0,
    timeout_s: float = 120.0,
) -> DrillReport:
    """Drop/crash faults during a distributed run, recovered by retry.

    Runs the simulation once undisturbed (the reference), then under the
    fault plan with up to ``max_attempts`` attempts: transient failures
    (per the campaign :class:`~repro.campaign.queue.RetryPolicy`) are
    retried against the *same* plan, whose exhausted ``max_fires``
    budgets keep the faults from re-firing — the transient-recovery
    model.  Passes when a retried attempt succeeds with seismograms
    bit-identical to the reference.
    """
    from ..campaign.queue import RetryPolicy
    from ..parallel.launcher import run_distributed_simulation

    policy = RetryPolicy(max_attempts=max_attempts)
    t0 = time.perf_counter()
    reference = run_distributed_simulation(
        params,
        sources=sources,
        stations=stations,
        n_steps=n_steps,
        overlap=overlap,
        timeout_s=timeout_s,
    )
    report = DrillReport(
        drill="comm",
        passed=False,
        bit_identical=False,
        attempts=0,
        faults_fired=0,
        detail={"overlap": bool(overlap), "max_attempts": max_attempts},
    )
    disturbed = None
    for attempt in range(1, max_attempts + 1):
        report.attempts = attempt
        try:
            disturbed = run_distributed_simulation(
                params,
                sources=sources,
                stations=stations,
                n_steps=n_steps,
                overlap=overlap,
                timeout_s=timeout_s,
                fault_plan=plan,
                recv_timeout_s=recv_timeout_s,
            )
        except Exception as exc:  # noqa: BLE001 - classified below
            report.errors.append(f"attempt {attempt}: {type(exc).__name__}: {exc}")
            if policy.classify(exc) == "transient" and attempt < max_attempts:
                continue
            break
        break
    report.faults_fired = plan.total_fired
    report.fault_events = list(plan.events)
    if disturbed is not None:
        report.bit_identical = _bit_identical(
            reference.seismograms, disturbed.seismograms
        )
        report.passed = report.bit_identical and plan.total_fired > 0
    report.wall_s = time.perf_counter() - t0
    return report


def run_checkpoint_drill(
    params,
    sources: list | None = None,
    stations: list | None = None,
    n_steps: int | None = None,
    n_segments: int = 3,
    corrupt_segment: int = 0,
) -> DrillReport:
    """Flip a bit in a mid-run checkpoint; recover via verified fallback.

    Runs the segmented executor twice over one shared mesh: once clean,
    once with the ``corrupt_segment``-th checkpoint corrupted right
    after it is written (through the ``on_checkpoint`` hook).  The
    corrupted restore must be rejected by the v3 CRC32 verification and
    the run must fall back to the last verified checkpoint (or step 0),
    re-march the lost span, and still produce bit-identical seismograms.
    """
    from ..campaign.segments import run_segmented_simulation
    from ..mesh.mesher import build_global_mesh
    from ..obs.metrics import MetricsRegistry
    from .integrity import flip_bit

    t0 = time.perf_counter()
    mesh = build_global_mesh(params)
    clean = run_segmented_simulation(
        params,
        sources=sources,
        stations=stations,
        n_steps=n_steps,
        n_segments=n_segments,
        mesh=mesh,
    )
    corrupted: list[str] = []

    def corrupt(index: int, path) -> None:
        if index == corrupt_segment:
            # Flip a bit in the middle of the file: compressed array
            # data, past the zip headers.
            size = path.stat().st_size
            flip_bit(path, bit=8 * (size // 2))
            corrupted.append(str(path))

    metrics = MetricsRegistry()
    report = DrillReport(
        drill="checkpoint",
        passed=False,
        bit_identical=False,
        attempts=1,
        faults_fired=0,
        detail={"n_segments": n_segments, "corrupt_segment": corrupt_segment},
    )
    import warnings as _warnings

    try:
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")  # the fallback warns by design
            disturbed = run_segmented_simulation(
                params,
                sources=sources,
                stations=stations,
                n_steps=n_steps,
                n_segments=n_segments,
                mesh=mesh,
                metrics=metrics,
                on_checkpoint=corrupt,
            )
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report.errors.append(f"{type(exc).__name__}: {exc}")
        report.wall_s = time.perf_counter() - t0
        return report
    fallbacks = metrics.counter("campaign.checkpoint_corruptions").value
    report.faults_fired = len(corrupted)
    report.fault_events = [
        {"kind": "checkpoint_corruption", "path": p} for p in corrupted
    ]
    report.bit_identical = _bit_identical(
        clean.seismograms, disturbed.seismograms
    )
    report.detail["fallbacks"] = int(fallbacks)
    report.passed = (
        report.bit_identical and bool(corrupted) and fallbacks >= 1
    )
    report.wall_s = time.perf_counter() - t0
    return report


def run_service_drill(
    params,
    source: dict | None = None,
    stations: list | None = None,
    n_steps: int | None = None,
    inject_failures: int = 1,
    max_attempts: int = 3,
) -> DrillReport:
    """Fault the serving tier twice; the client must never see it.

    Two injections against one :class:`~repro.service.frontend
    .SimulationService`:

    1. the first request's backend solve raises ``inject_failures``
       transient faults (the campaign queue's injection hook) — the
       worker pool's retry loop must absorb them and the client must
       get a normal ``computed`` answer;
    2. the stored NPZ payload then has one bit flipped — the next
       identical request must quarantine the corrupt bundle, recompute,
       and still answer bit-identically to an undisturbed reference.

    Passes when both faults fired, both answers match the undisturbed
    reference bit-for-bit, and no request raised.
    """
    import asyncio
    import tempfile

    from ..config.parameters import ConfigError
    from ..service.frontend import ServiceError, SimulationService
    from ..service.keys import SimulationRequest
    from ..solver.receivers import Station
    from .integrity import flip_bit

    t0 = time.perf_counter()
    stations = list(stations) if stations else [
        Station("POLE", (0.0, 0.0, 6371.0))
    ]
    report = DrillReport(
        drill="service",
        passed=False,
        bit_identical=False,
        attempts=0,
        faults_fired=0,
        detail={
            "inject_failures": inject_failures,
            "max_attempts": max_attempts,
        },
    )
    clean = SimulationRequest(
        params=params,
        stations=tuple(stations),
        source=source,
        n_steps=n_steps,
    )
    faulty = SimulationRequest(
        params=params,
        stations=tuple(stations),
        source=source,
        n_steps=n_steps,
        # Execution options are not part of the content key, so the
        # faulty request addresses the same cache entry as the clean one.
        job_options={
            "inject_failures": inject_failures,
            "max_attempts": max_attempts,
        },
    )

    async def _drill() -> None:
        with tempfile.TemporaryDirectory() as ref_dir, \
                tempfile.TemporaryDirectory() as svc_dir:
            ref_service = SimulationService(store=ref_dir,
                                            n_backend_workers=1)
            try:
                reference = await ref_service.handle(clean)
            finally:
                ref_service.close()
            service = SimulationService(store=svc_dir, n_backend_workers=1)
            try:
                # Injection 1: transient backend faults, retried away.
                report.attempts += 1
                first = await service.handle(faulty)
                report.fault_events.append({
                    "kind": "backend_transient",
                    "count": inject_failures,
                    "status": first.status,
                })
                report.faults_fired += inject_failures
                # Injection 2: corrupt the cached payload mid-file.
                run = service.store.find_exact(first.key)
                size = run.path.stat().st_size
                flip_bit(run.path, bit=8 * (size // 2))
                report.attempts += 1
                second = await service.handle(clean)
                report.fault_events.append({
                    "kind": "cache_corruption",
                    "path": str(run.path),
                    "status": second.status,
                })
                report.faults_fired += 1
                report.detail["statuses"] = [first.status, second.status]
                report.detail["corruptions"] = service.counts["corruptions"]
                report.detail["solver_runs"] = service.solver_runs
                report.bit_identical = (
                    _bit_identical(reference.seismograms, first.seismograms)
                    and _bit_identical(
                        reference.seismograms, second.seismograms
                    )
                )
                report.passed = (
                    report.bit_identical
                    and service.counts["errors"] == 0
                    and service.counts["corruptions"] >= 1
                )
            finally:
                service.close()

    try:
        asyncio.run(_drill())
    except (ServiceError, ConfigError, OSError) as exc:
        report.errors.append(f"{type(exc).__name__}: {exc}")
    report.wall_s = time.perf_counter() - t0
    return report


def run_rank_death_drill(
    params,
    sources: list | None = None,
    stations: list | None = None,
    n_steps: int | None = None,
    crash_rank: int = 2,
    crash_step: int | None = None,
    mode: str = "respawn",
    overlap: bool | None = None,
    max_recoveries: int = 2,
    recv_timeout_s: float = 5.0,
    timeout_s: float = 300.0,
    suspect_after_s: float = 1.0,
    probe_interval_s: float = 0.02,
) -> DrillReport:
    """Kill a rank mid-epoch; the supervisor must recover *in-run*.

    Runs the simulation once undisturbed (the reference), then under a
    :class:`~repro.resilience.supervisor.RunSupervisor` with a
    step-pinned crash injected into ``crash_rank`` (defaulting to the
    middle of the run).  Unlike the comm drill's whole-job retry, the
    supervisor resumes from the ranks' own mid-run checkpoints, so the
    drill passes only if:

    * exactly the planned crash fired and one recovery was executed;
    * ``mode="respawn"``: the recovered seismograms are **bit-identical**
      to the reference (each rank reloaded its own checkpoint on an
      identical world — determinism is the contract);
    * ``mode="shrink"``: the recovered world is *smaller*, and the
      seismograms — re-keyed by station name, since ownership moved —
      match the reference within :data:`SHRINK_RTOL` (cross-partition
      state remap tolerates last-ulp assembly differences).

    The report's ``detail`` carries the measured recovery latency and
    the steps re-executed, the numbers quoted in EXPERIMENTS.md.
    """
    from ..parallel.launcher import run_distributed_simulation
    from ..resilience import RecoveryPolicy, RunSupervisor
    from .faults import FaultPlan, FaultSpec

    t0 = time.perf_counter()
    reference = run_distributed_simulation(
        params,
        sources=sources,
        stations=stations,
        n_steps=n_steps,
        overlap=overlap,
        timeout_s=timeout_s,
    )
    total = reference.n_steps
    if crash_step is None:
        crash_step = max(1, total // 2)
    plan = FaultPlan(
        [FaultSpec(kind="crash", rank=crash_rank, step=crash_step)]
    )
    report = DrillReport(
        drill="rank-death",
        passed=False,
        bit_identical=False,
        attempts=1,
        faults_fired=0,
        detail={
            "mode": mode,
            "overlap": bool(overlap),
            "crash_rank": crash_rank,
            "crash_step": crash_step,
        },
    )
    supervisor = RunSupervisor(
        policy=RecoveryPolicy(
            mode=mode,
            max_recoveries=max_recoveries,
            suspect_after_s=suspect_after_s,
            probe_interval_s=probe_interval_s,
        )
    )
    try:
        supervised = supervisor.run(
            params,
            sources=sources,
            stations=stations,
            n_steps=n_steps,
            overlap=overlap,
            timeout_s=timeout_s,
            recv_timeout_s=recv_timeout_s,
            fault_plan=plan,
        )
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report.errors.append(f"{type(exc).__name__}: {exc}")
        report.wall_s = time.perf_counter() - t0
        return report
    report.faults_fired = plan.total_fired
    report.fault_events = list(plan.events)
    report.detail.update(supervised.provenance())
    if supervised.recoveries:
        report.detail["recovery_latency_s"] = [
            e.wall_s for e in supervised.recoveries
        ]
        report.detail["steps_reexecuted"] = [
            crash_step - e.resume_step for e in supervised.recoveries
        ]
    names_ref = list(reference.station_names)
    names_new = list(supervised.result.station_names)
    if sorted(names_ref) != sorted(names_new):
        report.errors.append(
            f"station sets differ: {names_ref} vs {names_new}"
        )
        report.wall_s = time.perf_counter() - t0
        return report
    order = [names_new.index(n) for n in names_ref]
    recovered = supervised.result.seismograms[order]
    report.bit_identical = _bit_identical(reference.seismograms, recovered)
    if mode == "respawn":
        matched = report.bit_identical
        report.detail["final_world_size"] = supervised.final_world_size
    else:
        scale = float(np.max(np.abs(reference.seismograms))) or 1.0
        rel = float(
            np.max(np.abs(reference.seismograms - recovered)) / scale
        )
        report.detail["rel_max_diff"] = rel
        report.detail["rtol"] = SHRINK_RTOL
        report.detail["final_world_size"] = supervised.final_world_size
        matched = rel <= SHRINK_RTOL and (
            supervised.final_world_size < supervised.world_sizes[0]
        )
    report.passed = (
        matched
        and plan.total_fired >= 1
        and supervised.n_recoveries >= 1
    )
    report.wall_s = time.perf_counter() - t0
    return report
