"""The simulation service core: request -> key -> store -> queue.

:class:`SimulationService` is the asyncio front-end the ROADMAP's
"millions of users" story asks for.  One request flows::

    normalize -> request_key -------------------------- exact store hit?
                    |                                      (CRC-verified)
                    +-- physics_key ------------- superset run to slice?
                    |                             (exact or interpolated)
                    +-- in-flight identical solve? ----------- coalesce
                    |
                    +-- miss: campaign queue/worker pool -> solve ->
                        store.put -> answer every waiter

Identical concurrent requests are **single-flight**: the first caller
owns the solve (through the existing :class:`~repro.campaign.workers
.WorkerPool`, so retry-with-backoff and typed failure classification
come for free), later callers await the same future and are counted as
``coalesced`` — one solve answers N clients.  A stored payload that
fails CRC verification is quarantined by the store and transparently
recomputed; the client never sees corruption.

Every response carries provenance: how it was answered (``hit`` /
``computed`` / ``coalesced`` / ``sliced``), whether it is ``exact``
(bit-identical to a dedicated solve) and which stored run sourced it.
Latency lands in a ``service.latency_s`` histogram and per-request
``service.request`` spans (hit/miss/coalesce counters attached), so
``python -m repro.service stats`` can report p50/p99.

Interactive misses solve one at a time (a waiting client wants the
lowest latency for *its* event, not campaign throughput).  Bulk
pre-population is different: a warm batch of compatible specs — same
deployment parameters and stations, sources differing — is exactly the
shape the campaign's event-batching scheduler packs into one B-event
solver run (:mod:`repro.campaign.batching`, docs/batching.md)::

    warm specs -> JobSpecs -> plan_batches -> [B-event solve] -> fan out
                                                    |
                                 store.put per event, provenance intact

Operators filling a store offline should drive
:func:`repro.campaign.run_batched_campaign` and ``store.put`` the
fanned-out per-event results; each record's ``batch_size`` /
``batch_index`` metadata survives into the manifest, and bit-identity
guarantees the served seismograms equal dedicated per-event solves.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

import numpy as np

from ..campaign.mesh_cache import params_hash
from ..campaign.queue import JobSpec
from ..campaign.workers import WorkerPool
from ..chaos.integrity import CacheCorruptionError
from ..obs.aggregate import percentile
from ..obs.tracer import SpanRecord
from ..solver.sources import MomentTensorSource, gaussian_stf
from .keys import RequestKeys, SimulationRequest, derive_keys
from .slicing import apply_slice, plan_slice
from .store import SeismogramStore, StoredRun

__all__ = [
    "ServiceError",
    "BadRequestError",
    "BackendError",
    "TransientBackendError",
    "ServiceResponse",
    "SimulationService",
]

#: JobSpec fields a request's ``job_options`` may set.
_JOB_OPTION_FIELDS = (
    "n_segments",
    "timeout_s",
    "max_attempts",
    "inject_failures",
    "stream_path",
    "supervise",
    "max_recoveries",
)


class ServiceError(RuntimeError):
    """Base class for service-layer failures."""


class BadRequestError(ServiceError):
    """The request is malformed (unknown route, bad JSON, bad shapes)."""


class BackendError(ServiceError):
    """The backend solve failed after the campaign layer's retries.

    ``failure_class`` carries the campaign
    :meth:`~repro.campaign.queue.RetryPolicy.classify` verdict
    (``"transient"`` / ``"fatal"`` / ``"permanent"``, or None when the
    failure never went through the classifier), so the transport tier
    can distinguish retry-worthy exhaustion from deterministic failure.
    """

    def __init__(self, message: str, failure_class: str | None = None):
        super().__init__(message)
        self.failure_class = failure_class


class TransientBackendError(BackendError):
    """The backend failed on *transient* errors only (retries exhausted).

    The same request may well succeed later — the HTTP tier answers 503
    (with Retry-After) instead of a terminal 502, so clients and load
    balancers retry instead of giving up.
    """

    def __init__(self, message: str, failure_class: str | None = "transient"):
        super().__init__(message, failure_class=failure_class)


@dataclass
class ServiceResponse:
    """One answered request, with full provenance.

    ``seismograms`` rows are in the order the client asked for
    (canonicalization is internal); ``source_key`` names the stored run
    that produced the data (equal to ``key`` unless sliced from a
    superset run); ``exact`` is False only for interpolated slices.
    """

    key: str
    status: str  # "hit" | "computed" | "coalesced" | "sliced"
    exact: bool
    source_key: str
    dt: float
    stations: tuple[str, ...]
    seismograms: np.ndarray
    latency_s: float = 0.0

    @property
    def n_steps(self) -> int:
        return int(self.seismograms.shape[1])

    def seismogram(self, name: str) -> np.ndarray:
        """(n_steps, 3) trace of the named station."""
        if name not in self.stations:
            raise KeyError(f"no station named {name!r} in the response")
        return self.seismograms[self.stations.index(name)]

    def to_dict(self, include_data: bool = True) -> dict[str, Any]:
        d: dict[str, Any] = {
            "key": self.key,
            "status": self.status,
            "exact": self.exact,
            "source_key": self.source_key,
            "dt": self.dt,
            "n_steps": self.n_steps,
            "stations": list(self.stations),
            "latency_s": self.latency_s,
        }
        if include_data:
            d["seismograms"] = self.seismograms.tolist()
        return d


def _consume_exception(fut: asyncio.Future) -> None:
    # A single-flight future with no waiters would otherwise log
    # "exception was never retrieved" at GC time.
    if not fut.cancelled():
        fut.exception()


class SimulationService:
    """Simulation-as-a-service: cached, coalesced, campaign-backed.

    Parameters
    ----------
    store : the content-addressed :class:`SeismogramStore` (a directory
        path is accepted and wrapped).
    pool : campaign :class:`WorkerPool` used on cache miss; one is
        created if None (sharing ``metrics``).  The pool's mesh cache
        amortises the mesh across requests exactly as in campaigns.
    compute : injectable solve hook ``(request, keys) -> (data, dt)``
        returning seismograms in canonical station order; defaults to
        the campaign-queue backend.  Tests use this to count (and fake)
        solver invocations.
    metrics : optional registry receiving ``service.*`` counters and
        the ``service.latency_s`` histogram.
    tracer : optional :class:`~repro.obs.tracer.Tracer`; each request
        appends one ``service.request`` span with outcome counters.
    n_backend_workers : executor threads driving backend solves (the
        per-solve worker threads live inside the pool).
    allow_slicing : disable to force every non-exact request to the
        solver (ablation and debugging switch).
    """

    def __init__(
        self,
        store: SeismogramStore | str,
        pool: WorkerPool | None = None,
        compute: Callable[..., tuple[np.ndarray, float]] | None = None,
        metrics=None,
        tracer=None,
        n_backend_workers: int = 2,
        allow_slicing: bool = True,
    ):
        self.store = (
            store
            if isinstance(store, SeismogramStore)
            else SeismogramStore(store, metrics=metrics)
        )
        self.metrics = metrics
        self.tracer = tracer
        self.pool = pool if pool is not None else WorkerPool(
            n_workers=n_backend_workers, metrics=metrics
        )
        self.compute = compute or self._campaign_compute
        self.allow_slicing = allow_slicing
        self._executor = ThreadPoolExecutor(
            max_workers=n_backend_workers, thread_name_prefix="service-solve"
        )
        self._inflight: dict[str, asyncio.Future] = {}
        self._seq = itertools.count()
        self._counter_lock = threading.Lock()
        self.counts: dict[str, int] = {
            name: 0
            for name in (
                "requests", "hits", "misses", "coalesced", "sliced",
                "corruptions", "errors",
            )
        }
        self.solver_runs = 0
        self._latencies: list[float] = []

    # -- accounting ---------------------------------------------------------

    def _bump(self, name: str, value: int = 1) -> None:
        with self._counter_lock:
            self.counts[name] = self.counts.get(name, 0) + value
            if self.metrics is not None:
                self.metrics.counter(f"service.{name}").add(value)

    def _observe(self, response: ServiceResponse, start: float) -> None:
        response.latency_s = time.perf_counter() - start
        with self._counter_lock:
            self._latencies.append(response.latency_s)
            if self.metrics is not None:
                self.metrics.histogram("service.latency_s").observe(
                    response.latency_s
                )
        if self.tracer is not None:
            self.tracer.records.append(
                SpanRecord(
                    name="service.request",
                    start_s=start - self.tracer.epoch,
                    duration_s=response.latency_s,
                    depth=0,
                    parent=-1,
                    pid=self.tracer.pid,
                    tid=self.tracer.tid,
                    counters={
                        "hit": 1.0 if response.status == "hit" else 0.0,
                        "coalesced":
                            1.0 if response.status == "coalesced" else 0.0,
                        "sliced": 1.0 if response.status == "sliced" else 0.0,
                        "exact": 1.0 if response.exact else 0.0,
                    },
                )
            )

    # -- request path -------------------------------------------------------

    async def handle(self, request: SimulationRequest) -> ServiceResponse:
        """Answer one request (the front door; see the module diagram)."""
        start = time.perf_counter()
        keys = derive_keys(request)
        self._bump("requests")
        try:
            response = await self._answer(request, keys)
        except BaseException:
            self._bump("errors")
            raise
        self._observe(response, start)
        return response

    async def _answer(
        self, request: SimulationRequest, keys: RequestKeys
    ) -> ServiceResponse:
        # 1. Exact content-address hit (CRC-verified; corruption falls
        #    through to a recompute).
        run = self.store.find_exact(keys.key)
        if run is not None:
            # np.load off-loop: a multi-MB cached payload must not stall
            # every other in-flight request for its read time (R9).
            data = await asyncio.to_thread(self._load_verified, run)
            if data is not None:
                self._bump("hits")
                return self._respond(request, keys, data, run.dt, "hit")
        # 2. Superset reuse: a stored run with the same wavefield whose
        #    receivers contain (or bracket) the requested stations.
        if self.allow_slicing:
            # Candidate scan is in-memory but the winning candidate is
            # np.load-ed and sliced — also off-loop (R9).
            sliced = await asyncio.to_thread(self._try_slice, request, keys)
            if sliced is not None:
                self._bump("sliced")
                return sliced
        # 3. Identical solve already in flight: wait for it.
        existing = self._inflight.get(keys.key)
        if existing is not None:
            self._bump("coalesced")
            data, dt = await existing
            return self._respond(request, keys, data, dt, "coalesced")
        # 4. Miss: this caller owns the solve; everyone arriving before
        #    it finishes awaits the same future.
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        fut.add_done_callback(_consume_exception)
        self._inflight[keys.key] = fut
        self._bump("misses")
        try:
            data, dt = await loop.run_in_executor(
                self._executor, self._compute_and_store, request, keys
            )
        except BaseException as exc:
            if not fut.done():
                fut.set_exception(exc)
            raise
        else:
            if not fut.done():
                fut.set_result((data, dt))
        finally:
            self._inflight.pop(keys.key, None)
        return self._respond(request, keys, data, dt, "computed")

    def _try_slice(
        self, request: SimulationRequest, keys: RequestKeys
    ) -> ServiceResponse | None:
        for cand in self.store.find_candidates(keys.physics):
            if cand.key == keys.key:
                continue  # the exact entry was already tried (or corrupt)
            plan = plan_slice(request.stations, cand.stations)
            if plan is None:
                continue
            data = self._load_verified(cand)
            if data is None:
                continue
            return ServiceResponse(
                key=keys.key,
                status="sliced",
                exact=plan.exact,
                source_key=cand.key,
                dt=cand.dt,
                stations=tuple(s.name for s in request.stations),
                seismograms=apply_slice(plan, data),
            )
        return None

    def _load_verified(self, run: StoredRun) -> np.ndarray | None:
        """Load a stored run; corruption counts and reads as a miss."""
        try:
            return self.store.load(run)
        except CacheCorruptionError:
            # The store already quarantined and deregistered the file.
            self._bump("corruptions")
            return None

    def _respond(
        self,
        request: SimulationRequest,
        keys: RequestKeys,
        canonical_data: np.ndarray,
        dt: float,
        status: str,
    ) -> ServiceResponse:
        """Map canonical-order rows back to the client's station order."""
        index = {s.name: i for i, s in enumerate(keys.stations)}
        rows = np.stack(
            [canonical_data[index[s.name]] for s in request.stations], axis=0
        )
        return ServiceResponse(
            key=keys.key,
            status=status,
            exact=True,
            source_key=keys.key,
            dt=float(dt),
            stations=tuple(s.name for s in request.stations),
            seismograms=rows,
        )

    # -- backend ------------------------------------------------------------

    def _compute_and_store(
        self, request: SimulationRequest, keys: RequestKeys
    ) -> tuple[np.ndarray, float]:
        """Executor-thread body of a miss: solve, verify shape, persist."""
        data, dt = self.compute(request, keys)
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 3 or data.shape[0] != len(keys.stations):
            raise BackendError(
                f"backend returned seismograms of shape {data.shape} for "
                f"{len(keys.stations)} stations"
            )
        with self._counter_lock:
            self.solver_runs += 1
        self.store.put(
            key=keys.key,
            physics_key=keys.physics,
            stations=keys.stations,
            data=data,
            dt=float(dt),
            params_hash=params_hash(request.params),
        )
        return data, float(dt)

    def _campaign_compute(
        self, request: SimulationRequest, keys: RequestKeys
    ) -> tuple[np.ndarray, float]:
        """Default backend: one JobSpec through the campaign pool.

        The pool brings the campaign machinery with it — shared
        content-addressed mesh cache, per-job timeout, retry with
        backoff over typed transient failures (including drill-injected
        faults), provenance if the pool has a store.
        """
        sources = None
        if request.source is not None:
            spec = request.source
            sources = [
                MomentTensorSource(
                    position=tuple(spec["position"]),
                    moment=spec["moment_scale"] * np.eye(3),
                    stf=gaussian_stf(spec["half_duration_s"]),
                    time_shift=spec["time_shift"],
                )
            ]
        options = {
            name: request.job_options[name]
            for name in _JOB_OPTION_FIELDS
            if name in request.job_options
        }
        job = JobSpec(
            name=f"service-{keys.key}-{next(self._seq)}",
            params=request.params,
            sources=sources,
            stations=list(keys.stations),
            n_steps=request.n_steps,
            **options,
        )
        result = self.pool.run([job])[0]
        if not result.succeeded or result.seismograms is None:
            message = (
                f"backend solve for request {keys.key} failed after "
                f"{result.attempts} attempt(s): {result.error} "
                f"[{result.failure_class}]"
            )
            # A transiently-failed job (rank timeout, lost rank, injected
            # fault) exhausted its retry budget but is not deterministic:
            # surface the distinction so HTTP can answer 503, not 502.
            if result.failure_class == "transient":
                raise TransientBackendError(message)
            raise BackendError(message, failure_class=result.failure_class)
        return result.seismograms, result.dt

    # -- operator surface ---------------------------------------------------

    async def warm(
        self, requests: list[SimulationRequest]
    ) -> list[ServiceResponse]:
        """Pre-answer a batch of requests (populates the store)."""
        return list(
            await asyncio.gather(*(self.handle(r) for r in requests))
        )

    def stats(self) -> dict[str, Any]:
        """Counter snapshot plus latency percentiles (the CLI table).

        ``hit_rate`` counts every request answered without a *new*
        solve — exact hits, slices, and coalesced waiters — over all
        requests.
        """
        with self._counter_lock:
            counts = dict(self.counts)
            solver_runs = self.solver_runs
            latencies = list(self._latencies)
        requests = counts["requests"]
        served = counts["hits"] + counts["sliced"] + counts["coalesced"]
        return {
            **counts,
            "solver_runs": solver_runs,
            "hit_rate": served / requests if requests else 0.0,
            "latency_p50_s": percentile(latencies, 50.0),
            "latency_p99_s": percentile(latencies, 99.0),
            "latency_mean_s": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "store": self.store.stats(),
        }

    def close(self) -> None:
        """Shut down the backend executor (idempotent)."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
