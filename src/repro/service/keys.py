"""Request normalization and canonical content keys for the service.

A simulation request — parameters, one source, a set of receiving
stations, a step count — must map to a *stable* content address before
the cache can amortise anything.  The derivation mirrors
:func:`repro.campaign.mesh_cache.mesh_cache_key`: hash the canonical
JSON of the physics-relevant subset, and nothing else.

Two keys are derived per request:

* :func:`physics_key` — everything that determines the *wavefield*
  (parameters, source, step count) but not where it is recorded.  Two
  requests with the same physics key can in principle be answered from
  one stored run by slicing its receiver rows
  (:mod:`repro.service.slicing`).
* :func:`request_key` — the physics key plus the canonicalized station
  set: the full content address of one stored seismogram bundle.

Station canonicalization is **order-insensitive**: stations are sorted
by (name, position) before hashing, so a client that permutes its
station list still hits the same cache entry (the regression test in
``tests/test_service.py`` proves it).  Responses are always mapped back
to the order the client asked for.

Engineering switches proven bit-identical to their reference path —
``SINGLE_PASS_MESHER`` (the A-MESH2X ablation), ``OVERLAP_COMM`` (the
overlap bit-identity gate) — and the purely observational
``HEALTH_CHECK_EVERY`` are excluded from the key: flipping them must
not fork the cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..config.parameters import ParameterError, SimulationParameters
from ..solver.receivers import Station

__all__ = [
    "SERVICE_EXCLUDED_FIELDS",
    "SimulationRequest",
    "RequestKeys",
    "canonical_stations",
    "station_fingerprint",
    "physics_key",
    "request_key",
    "derive_keys",
]

#: Par_file keys that do NOT change the computed seismograms bit-wise
#: (or only observe the run) and are therefore excluded from both keys.
SERVICE_EXCLUDED_FIELDS = (
    "SINGLE_PASS_MESHER",
    "OVERLAP_COMM",
    "HEALTH_CHECK_EVERY",
)


def _canon_floats(value: Any) -> Any:
    """Normalise numbers for hashing (ints that are whole floats, lists)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canon_floats(v) for v in value]
    return value


def _canon_source(source: Mapping[str, Any] | None) -> dict[str, Any] | None:
    """Canonical wire form of one source spec (the campaign CLI format)."""
    if source is None:
        return None
    position = source.get("position")
    if position is None or len(position) != 3:
        raise ParameterError(
            "source spec needs a 3-component 'position', got "
            f"{position!r}"
        )
    return {
        "position": [float(v) for v in position],
        "moment_scale": float(source.get("moment_scale", 1.0e20)),
        "half_duration_s": float(source.get("half_duration_s", 10.0)),
        "time_shift": float(source.get("time_shift", 0.0)),
    }


@dataclass(frozen=True)
class SimulationRequest:
    """One normalized service request.

    ``source`` is the JSON wire spec (position / moment_scale /
    half_duration_s / time_shift — the same shape the campaign CLI
    takes), not a built :class:`~repro.solver.sources
    .MomentTensorSource`: requests must be hashable and serializable,
    so the source object is constructed only when a solve is actually
    needed.  ``job_options`` passes straight through to the backend
    :class:`~repro.campaign.queue.JobSpec` (timeouts, segment counts,
    drill fault injection) and is deliberately *not* part of any key —
    how a job is executed never forks the cache.
    """

    params: SimulationParameters
    stations: tuple[Station, ...]
    source: dict[str, Any] | None = None
    n_steps: int | None = None
    job_options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stations:
            raise ParameterError("request needs at least one station")
        object.__setattr__(self, "source", _canon_source(self.source))
        names = [s.name for s in self.stations]
        if len(set(names)) != len(names):
            raise ParameterError(
                f"duplicate station names in request: {sorted(names)}"
            )

    @classmethod
    def from_spec(
        cls,
        spec: Mapping[str, Any],
        defaults: Mapping[str, Any] | None = None,
    ) -> "SimulationRequest":
        """Build a request from the JSON wire format.

        ``spec`` carries Par_file-style overrides under ``params``, one
        ``source`` spec, a ``stations`` list of ``{name, position}``,
        and optional ``n_steps`` / ``job_options``; ``defaults``
        (Par_file keys) underlie the per-request ``params``.
        """
        base = SimulationParameters().to_dict()
        base.update(defaults or {})
        base.update(spec.get("params", {}))
        params = SimulationParameters.from_dict(base)
        stations = tuple(
            Station(
                name=str(s["name"]),
                position=tuple(float(v) for v in s["position"]),
            )
            for s in spec.get("stations", [])
        )
        n_steps = spec.get("n_steps")
        return cls(
            params=params,
            stations=stations,
            source=spec.get("source"),
            n_steps=None if n_steps is None else int(n_steps),
            job_options=dict(spec.get("job_options", {})),
        )

    def to_spec(self) -> dict[str, Any]:
        """The JSON wire form (inverse of :meth:`from_spec`)."""
        spec: dict[str, Any] = {
            "params": self.params.to_dict(),
            "stations": [
                {"name": s.name, "position": list(s.position)}
                for s in self.stations
            ],
        }
        if self.source is not None:
            spec["source"] = dict(self.source)
        if self.n_steps is not None:
            spec["n_steps"] = self.n_steps
        if self.job_options:
            spec["job_options"] = dict(self.job_options)
        return spec


def canonical_stations(stations: tuple[Station, ...]) -> tuple[Station, ...]:
    """Stations in canonical (order-insensitive) order.

    Sorted by (name, position): any permutation of the same station set
    canonicalizes identically, which is what makes the request key
    order-insensitive.
    """
    return tuple(
        sorted(stations, key=lambda s: (s.name, tuple(s.position)))
    )


def _digest(payload: Any) -> str:
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def station_fingerprint(stations: tuple[Station, ...]) -> str:
    """Order-insensitive content hash of a station set."""
    return _digest(
        [
            [s.name, _canon_floats(list(s.position))]
            for s in canonical_stations(stations)
        ]
    )


def _physics_payload(request: SimulationRequest) -> dict[str, Any]:
    full = request.params.to_dict()
    subset = {
        name: _canon_floats(value)
        for name, value in full.items()
        if name not in SERVICE_EXCLUDED_FIELDS
    }
    return {
        "params": subset,
        "source": request.source,
        "n_steps": request.n_steps,
    }


def physics_key(request: SimulationRequest) -> str:
    """Content hash of everything that determines the wavefield."""
    return _digest(_physics_payload(request))


def request_key(request: SimulationRequest) -> str:
    """Full content address: physics key + canonical station set."""
    payload = _physics_payload(request)
    payload["stations"] = [
        [s.name, _canon_floats(list(s.position))]
        for s in canonical_stations(request.stations)
    ]
    return _digest(payload)


@dataclass(frozen=True)
class RequestKeys:
    """The derived identity of one request, computed once per handle."""

    key: str
    physics: str
    stations: tuple[Station, ...]  # canonical order


def derive_keys(request: SimulationRequest) -> RequestKeys:
    """Normalize a request into its canonical keys and station order."""
    return RequestKeys(
        key=request_key(request),
        physics=physics_key(request),
        stations=canonical_stations(request.stations),
    )
