"""repro.service: simulation-as-a-service with a content-addressed cache.

The serving tier over the campaign machinery: clients describe an
event + station set, the service normalizes it into canonical content
keys (:mod:`.keys`), answers from the CRC-verified
:class:`~repro.service.store.SeismogramStore` when it can — exactly,
by slicing a superset run (:mod:`.slicing`), or by coalescing onto an
identical in-flight solve — and falls through to the campaign
queue/worker pool otherwise (:mod:`.frontend`).  :mod:`.http` exposes
it over a stdlib-only asyncio HTTP listener; ``python -m repro.service``
is the operator CLI (serve / request / warm / stats).
"""

from .frontend import (
    BackendError,
    BadRequestError,
    ServiceError,
    ServiceResponse,
    SimulationService,
    TransientBackendError,
)
from .http import ServiceHTTPServer, http_json
from .keys import (
    SERVICE_EXCLUDED_FIELDS,
    RequestKeys,
    SimulationRequest,
    canonical_stations,
    derive_keys,
    physics_key,
    request_key,
    station_fingerprint,
)
from .slicing import SlicePlan, apply_slice, plan_slice
from .store import SeismogramStore, StoredRun

__all__ = [
    "BackendError",
    "TransientBackendError",
    "BadRequestError",
    "ServiceError",
    "ServiceResponse",
    "SimulationService",
    "ServiceHTTPServer",
    "http_json",
    "SERVICE_EXCLUDED_FIELDS",
    "RequestKeys",
    "SimulationRequest",
    "canonical_stations",
    "derive_keys",
    "physics_key",
    "request_key",
    "station_fingerprint",
    "SlicePlan",
    "apply_slice",
    "plan_slice",
    "SeismogramStore",
    "StoredRun",
]
