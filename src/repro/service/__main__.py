"""``python -m repro.service`` — run and talk to the simulation service.

Subcommands::

    serve     start the HTTP front-end over a seismogram store
    request   submit one simulation request and print the answer
    warm      pre-populate the cache from a JSON batch of request specs
    stats     print the service's counter / latency report

Example session (two shells)::

    python -m repro.service serve --store /tmp/seis --set NEX_XI=8 &
    python -m repro.service request --port 8642 \\
        --source 0,0,6171 --station POLE:0,0,6371 --set NSTEP_OVERRIDE=8

A ``warm`` batch file is ``{"requests": [spec, ...]}`` where each spec
is the ``/simulate`` wire format (see :meth:`repro.service.keys
.SimulationRequest.from_spec`).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any

from ..obs.metrics import MetricsRegistry
from ..obs.report import render_service_report
from .frontend import SimulationService
from .http import ServiceHTTPServer, http_json

DEFAULT_PORT = 8642


def _parse_sets(pairs: list[str]) -> dict[str, Any]:
    """``KEY=VALUE`` pairs; values parse as JSON, falling back to str."""
    out: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--set needs KEY=VALUE, got {pair!r}")
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value
    return out


def _parse_station(text: str) -> dict[str, Any]:
    """``NAME:x,y,z`` -> station spec dict."""
    name, sep, coords = text.partition(":")
    parts = coords.split(",") if sep else []
    if not name or len(parts) != 3:
        raise SystemExit(f"--station needs NAME:x,y,z, got {text!r}")
    return {"name": name, "position": [float(v) for v in parts]}


async def _run_server(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry()
    # Construction scans the store manifest from disk — run it off-loop
    # so a large warm cache does not stall the fresh event loop (R9).
    service = await asyncio.to_thread(
        lambda: SimulationService(
            store=args.store,
            metrics=metrics,
            n_backend_workers=args.workers,
            allow_slicing=not args.no_slicing,
        )
    )
    server = ServiceHTTPServer(
        service,
        host=args.host,
        port=args.port,
        defaults=_parse_sets(args.set),
    )
    await server.start()
    print(
        f"repro.service listening on {server.host}:{server.port} "
        f"(store: {service.store.directory}, "
        f"{len(service.store)} cached runs)",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        service.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        return asyncio.run(_run_server(args))
    except KeyboardInterrupt:
        return 0


def _request_spec(args: argparse.Namespace) -> dict[str, Any]:
    spec: dict[str, Any] = {
        "params": _parse_sets(args.set),
        "stations": [_parse_station(s) for s in args.station],
    }
    if args.source:
        position = [float(v) for v in args.source.split(",")]
        spec["source"] = {
            "position": position,
            "moment_scale": args.moment_scale,
            "half_duration_s": args.half_duration,
            "time_shift": args.time_shift,
        }
    if args.n_steps is not None:
        spec["n_steps"] = args.n_steps
    return spec


def _cmd_request(args: argparse.Namespace) -> int:
    spec = _request_spec(args)
    spec["include_data"] = not args.no_data
    status, payload = http_json(
        args.host, args.port, "POST", "/simulate", spec
    )
    if status != 200:
        print(f"request failed ({status}): "
              f"{(payload or {}).get('error', payload)}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"{payload['status']}"
        f"{' (exact)' if payload['exact'] else ' (interpolated)'} "
        f"key={payload['key']} source_key={payload['source_key']} "
        f"latency={payload['latency_s']:.4f}s"
    )
    print(
        f"{len(payload['stations'])} station(s), "
        f"{payload['n_steps']} steps, dt={payload['dt']:.6g}s: "
        + ", ".join(payload["stations"])
    )
    return 0


def _cmd_warm(args: argparse.Namespace) -> int:
    with open(args.batch, encoding="utf-8") as fh:
        batch = json.load(fh)
    if isinstance(batch, list):
        batch = {"requests": batch}
    status, payload = http_json(args.host, args.port, "POST", "/warm", batch)
    if status != 200:
        print(f"warm failed ({status}): "
              f"{(payload or {}).get('error', payload)}", file=sys.stderr)
        return 1
    for item in payload["warmed"]:
        print(f"{item['status']:<10} key={item['key']} "
              f"latency={item['latency_s']:.4f}s")
    print(f"warmed {len(payload['warmed'])} request(s)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    status, payload = http_json(args.host, args.port, "GET", "/stats")
    if status != 200:
        print(f"stats failed ({status}): {payload}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_service_report(payload))
    return 0


def _add_client_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service front-end.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="start the HTTP front-end")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help="0 binds an ephemeral port")
    p_serve.add_argument("--store", default="service-store",
                         help="seismogram store directory")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="backend solve workers")
    p_serve.add_argument("--set", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="Par_file default underlying every request")
    p_serve.add_argument("--no-slicing", action="store_true",
                         help="disable superset-run slicing")
    p_serve.set_defaults(func=_cmd_serve)

    p_req = sub.add_parser("request", help="submit one request")
    _add_client_args(p_req)
    p_req.add_argument("--station", action="append", default=[],
                       metavar="NAME:x,y,z", required=True)
    p_req.add_argument("--source", default=None, metavar="x,y,z",
                       help="source position")
    p_req.add_argument("--moment-scale", type=float, default=1.0e20)
    p_req.add_argument("--half-duration", type=float, default=10.0)
    p_req.add_argument("--time-shift", type=float, default=0.0)
    p_req.add_argument("--set", action="append", default=[],
                       metavar="KEY=VALUE", help="Par_file override")
    p_req.add_argument("--n-steps", type=int, default=None)
    p_req.add_argument("--no-data", action="store_true",
                       help="provenance only, skip the seismogram payload")
    p_req.add_argument("--json", action="store_true",
                       help="print the raw JSON response")
    p_req.set_defaults(func=_cmd_request)

    p_warm = sub.add_parser("warm", help="pre-populate the cache")
    _add_client_args(p_warm)
    p_warm.add_argument("batch",
                        help='JSON file: {"requests": [spec, ...]}')
    p_warm.set_defaults(func=_cmd_warm)

    p_stats = sub.add_parser("stats", help="print the service report")
    _add_client_args(p_stats)
    p_stats.add_argument("--json", action="store_true")
    p_stats.set_defaults(func=_cmd_stats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
