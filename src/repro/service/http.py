"""Minimal asyncio HTTP/1.1 layer over :class:`SimulationService`.

Hand-rolled on ``asyncio.start_server`` — the service must run on the
bare Python toolchain, so no web framework.  JSON in, JSON out, four
routes::

    POST /simulate   one request spec -> seismograms + provenance
    POST /warm       {"requests": [spec, ...]} -> provenance only
    GET  /stats      service counter / latency snapshot
    GET  /healthz    liveness probe

A ``/simulate`` body is the :meth:`~repro.service.keys
.SimulationRequest.from_spec` wire format; pass ``"include_data":
false`` in the body to get provenance without the (large) seismogram
payload.  Typed failures map to status codes — malformed requests to
400, *transient* backend exhaustion (rank timeouts, lost ranks: a retry
may succeed) to 503 with a Retry-After header, deterministic backend
failures to 502 — and anything truly unexpected propagates (the asyncio
task logs it) rather than being silently swallowed.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any

from ..config.parameters import ConfigError
from .frontend import (
    BackendError,
    BadRequestError,
    SimulationService,
    TransientBackendError,
)
from .keys import SimulationRequest

__all__ = ["ServiceHTTPServer", "http_json"]

#: Largest accepted request body; a station list is small, this is for
#: warm batches.
MAX_BODY_BYTES = 16 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Retry-After answered with a 503 (transient backend exhaustion).
RETRY_AFTER_S = 5

#: Failure types the HTTP boundary converts to a 400 rather than a
#: connection-killing traceback.  Deliberately a typed tuple, not a
#: broad except: unexpected bugs should surface loudly (R5).
_CLIENT_ERRORS = (
    BadRequestError,
    ConfigError,  # ParameterError is a ConfigError
    json.JSONDecodeError,
    KeyError,
    TypeError,
    ValueError,
)


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request off the stream; None on a cleanly closed pipe."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line or not request_line.strip():
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise BadRequestError(
            f"malformed request line: {request_line!r}"
        )
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as exc:
        raise BadRequestError(
            f"bad Content-Length: {headers.get('content-length')!r}"
        ) from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise BadRequestError(f"body of {length} bytes refused")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
    return method.upper(), target, headers, body


class ServiceHTTPServer:
    """The service's front door: a keep-alive JSON-over-HTTP listener.

    ``defaults`` are Par_file-style keys underlying every request's
    ``params`` (the operator pins the deployment's resolution once;
    clients override per request).  ``port=0`` binds an ephemeral port,
    published on ``self.port`` after :meth:`start` — which is what the
    tests and the CI load-smoke use.
    """

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
        defaults: dict[str, Any] | None = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.defaults = dict(defaults or {})
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "ServiceHTTPServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await _read_http_request(reader)
                except BadRequestError as exc:
                    await self._send(writer, 400, {"error": str(exc)})
                    break
                if parsed is None:
                    break
                method, target, headers, body = parsed
                status, payload = await self._dispatch(method, target, body)
                await self._send(writer, status, payload)
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, OSError):
            # The peer vanished mid-response; nothing left to answer.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Nothing follows this await; a teardown-time cancel or
                # reset here is the connection ending either way.
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        retry_after = (
            f"Retry-After: {RETRY_AFTER_S}\r\n" if status == 503 else ""
        )
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_after}"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routes -------------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, Any]:
        path = target.split("?", 1)[0]
        try:
            if method == "GET" and path == "/healthz":
                return 200, {"ok": True}
            if method == "GET" and path == "/stats":
                return 200, self.service.stats()
            if method == "POST" and path == "/simulate":
                return await self._simulate(body)
            if method == "POST" and path == "/warm":
                return await self._warm(body)
            return 404, {"error": f"no route {method} {path}"}
        except TransientBackendError as exc:
            # Retry-worthy exhaustion: same request may succeed later.
            return 503, {
                "error": str(exc),
                "failure_class": exc.failure_class,
                "retry_after_s": RETRY_AFTER_S,
            }
        except BackendError as exc:
            return 502, {
                "error": str(exc),
                "failure_class": exc.failure_class,
            }
        except _CLIENT_ERRORS as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}

    async def _simulate(self, body: bytes) -> tuple[int, Any]:
        spec = json.loads(body.decode("utf-8") or "{}")
        if not isinstance(spec, dict):
            raise BadRequestError("request body must be a JSON object")
        include_data = bool(spec.pop("include_data", True))
        request = SimulationRequest.from_spec(spec, defaults=self.defaults)
        response = await self.service.handle(request)
        return 200, response.to_dict(include_data=include_data)

    async def _warm(self, body: bytes) -> tuple[int, Any]:
        spec = json.loads(body.decode("utf-8") or "{}")
        if not isinstance(spec, dict) or not isinstance(
            spec.get("requests"), list
        ):
            raise BadRequestError(
                'warm body must be {"requests": [spec, ...]}'
            )
        requests = [
            SimulationRequest.from_spec(s, defaults=self.defaults)
            for s in spec["requests"]
        ]
        responses = await self.service.warm(requests)
        return 200, {
            "warmed": [r.to_dict(include_data=False) for r in responses]
        }


def http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any | None = None,
    timeout_s: float = 120.0,
) -> tuple[int, Any]:
    """Blocking JSON request helper (the CLI's and benchmarks' client)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, json.loads(raw.decode("utf-8")) if raw else None
    finally:
        conn.close()
