"""Superset reuse: answer a request by slicing a stored run's receivers.

The ambitious cache win.  A stored run records the wavefield at *its*
station set; any request for the **same wavefield** (same
:func:`~repro.service.keys.physics_key`) at a subset of those stations
is answerable without touching the solver — the seismogram rows are
simply selected.  That answer is **exact**: recording a station is a
read (or fixed interpolation) of the wavefield, so dropping rows from a
superset run yields bit-identical traces to a run that asked for the
subset directly.

When a requested station is *not* in the stored set but the stored
receivers densely bracket it — two stored stations form a segment the
requested position sits on — the response is linearly interpolated
between the bracketing traces instead.  That answer is approximate and
is flagged ``exact=False`` in the response provenance; callers that
need solver-grade traces at that exact position can treat it as a
preview and force a compute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..solver.receivers import Station

__all__ = ["SlicePlan", "plan_slice", "apply_slice"]

#: Positions closer than this (km; the mesh is in Earth-radius km) are
#: the same station.
POSITION_TOL_KM = 1.0e-6

#: A requested station counts as *bracketed* by two stored stations when
#: its perpendicular distance to the segment between them is below this
#: fraction of the segment length.
BRACKET_TOL = 0.05


@dataclass(frozen=True)
class SlicePlan:
    """How to build each requested row from the stored rows.

    ``ops[i]`` is ``(j, -1, 1.0)`` for an exact copy of stored row
    ``j``, or ``(j, k, t)`` for linear interpolation
    ``(1 - t) * row[j] + t * row[k]``.  ``exact`` is True iff every op
    is a copy.
    """

    ops: tuple[tuple[int, int, float], ...]
    exact: bool


def _exact_row(
    station: Station, names: list[str], positions: np.ndarray
) -> int | None:
    """Stored row holding exactly this station's position, or None.

    Matching is by position (the physics), with the name required to
    agree when it exists in the stored set — two different instruments
    at one site still share the trace, but a stored name re-used for a
    different position is not a match.
    """
    target = np.asarray(station.position, dtype=np.float64)
    dist = np.linalg.norm(positions - target[None, :], axis=1)
    j = int(np.argmin(dist))
    if dist[j] > POSITION_TOL_KM:
        return None
    if station.name in names and names.index(station.name) != j:
        # The stored set knows this name at a different position.
        named = names.index(station.name)
        if dist[named] <= POSITION_TOL_KM:
            return named
        return None
    return j


def _bracket_row(
    station: Station, positions: np.ndarray
) -> tuple[int, int, float] | None:
    """Bracketing stored pair (j, k, t) for this position, or None.

    Scans the pairs formed by the few nearest stored stations; the
    requested point must project *inside* the segment (0 <= t <= 1)
    with a small perpendicular offset relative to the segment length.
    """
    if positions.shape[0] < 2:
        return None
    target = np.asarray(station.position, dtype=np.float64)
    dist = np.linalg.norm(positions - target[None, :], axis=1)
    nearest = np.argsort(dist)[: min(6, positions.shape[0])]
    best: tuple[float, int, int, float] | None = None
    for a_idx, j in enumerate(nearest):
        for k in nearest[a_idx + 1:]:
            a = positions[j]
            b = positions[k]
            seg = b - a
            seg_len = float(np.linalg.norm(seg))
            if seg_len <= POSITION_TOL_KM:
                continue
            t = float(np.dot(target - a, seg) / (seg_len * seg_len))
            if not 0.0 <= t <= 1.0:
                continue
            offset = float(np.linalg.norm(target - (a + t * seg)))
            if offset > BRACKET_TOL * seg_len:
                continue
            if best is None or offset < best[0]:
                best = (offset, int(j), int(k), t)
    if best is None:
        return None
    _offset, j, k, t = best
    return j, k, t


def plan_slice(
    requested: tuple[Station, ...],
    stored_stations: tuple[Station, ...],
) -> SlicePlan | None:
    """Plan how a stored run answers the requested stations.

    Returns ``None`` when any requested station is neither present in
    nor bracketed by the stored receiver set — the request is then a
    genuine miss and must go to the solver.
    """
    names = [s.name for s in stored_stations]
    positions = np.asarray(
        [s.position for s in stored_stations], dtype=np.float64
    )
    ops: list[tuple[int, int, float]] = []
    exact = True
    for station in requested:
        j = _exact_row(station, names, positions)
        if j is not None:
            ops.append((j, -1, 1.0))
            continue
        bracket = _bracket_row(station, positions)
        if bracket is None:
            return None
        ops.append(bracket)
        exact = False
    return SlicePlan(ops=tuple(ops), exact=exact)


def apply_slice(plan: SlicePlan, data: np.ndarray) -> np.ndarray:
    """Materialise the planned rows from a stored (n, steps, 3) array.

    Exact copies are bit-preserving row selections; interpolated rows
    are the planned convex combination of the bracketing traces.
    """
    rows = []
    for j, k, t in plan.ops:
        if k < 0:
            rows.append(data[j].copy())
        else:
            rows.append((1.0 - t) * data[j] + t * data[k])
    return np.stack(rows, axis=0)
