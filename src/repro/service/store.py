"""Content-addressed seismogram store: NPZ payloads + manifest provenance.

The service's cache of record.  Each stored *run* is one NPZ bundle —
the (n_stations, n_steps, 3) seismogram array in canonical station
order, the station names and positions, the time step — addressed by
the :func:`~repro.service.keys.request_key` of the request that
produced it, with a CRC32 map of every array embedded via
:mod:`repro.chaos.integrity` (the same format v3 discipline the
checkpoints and mesh spills follow).  Provenance lands in an
append-only ``manifest.jsonl`` exactly like
:class:`~repro.campaign.store.ResultStore`, and warm-up scans read it
through the torn-line-tolerant :func:`~repro.campaign.store
.read_manifest` — a crash mid-append costs one line, never the store.

Corruption is self-healing: a payload whose zip layer or checksums
reject is quarantined (renamed ``*.quarantined``) and deregistered, so
the service re-computes instead of serving garbage — the
quarantine-and-recompute drill in ``tests/test_service.py`` proves the
full loop.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..chaos.integrity import (
    INTEGRITY_KEY,
    CacheCorruptionError,
    IntegrityError,
    checksum_payload,
    parse_checksum_payload,
    verify_checksums,
)
from ..campaign.store import read_manifest
from ..solver.receivers import Station

__all__ = ["StoredRun", "SeismogramStore"]

RUN_RECORD_TYPE = "seismogram_run"


@dataclass(frozen=True)
class StoredRun:
    """Index entry of one stored seismogram bundle (not the data)."""

    key: str
    physics_key: str
    params_hash: str
    stations: tuple[Station, ...]  # canonical order = NPZ row order
    n_steps: int
    dt: float
    path: Path

    @property
    def station_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stations)


class SeismogramStore:
    """Directory-backed, content-addressed store of seismogram runs.

    Layout::

        <directory>/runs/run-<key>.npz   # payload, CRC32-verified on load
        <directory>/manifest.jsonl       # append-only provenance stream

    The in-memory index (key -> :class:`StoredRun`, physics key ->
    candidate runs) is built by :meth:`scan` from the manifest and kept
    current by :meth:`put`; all mutating operations are serialised on
    one lock because the service's backend executor threads and its
    event loop both touch the store.
    """

    def __init__(self, directory: str | Path, metrics=None):
        self.directory = Path(directory)
        self.runs_dir = self.directory / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / "manifest.jsonl"
        self.metrics = metrics
        self._lock = threading.Lock()
        self._runs: dict[str, StoredRun] = {}
        self._by_physics: dict[str, list[str]] = {}
        self.corruptions = 0
        self.scan()

    # -- internals ----------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"service.store.{name}").add(value)

    def _run_path(self, key: str) -> Path:
        return self.runs_dir / f"run-{key}.npz"

    def _register(self, run: StoredRun) -> None:
        # Called with the lock held; last write wins, like ResultStore.
        self._runs[run.key] = run
        siblings = self._by_physics.setdefault(run.physics_key, [])
        if run.key not in siblings:
            siblings.append(run.key)

    def _deregister(self, run: StoredRun) -> None:
        with self._lock:
            self._runs.pop(run.key, None)
            siblings = self._by_physics.get(run.physics_key, [])
            if run.key in siblings:
                siblings.remove(run.key)

    def _quarantine(self, run: StoredRun) -> None:
        """Move a corrupt payload aside and forget it ever existed."""
        self._deregister(run)
        self.corruptions += 1
        self._count("corruptions")
        target = run.path.with_suffix(run.path.suffix + ".quarantined")
        try:
            os.replace(run.path, target)
        except OSError:
            try:
                run.path.unlink()
            except OSError:
                pass

    # -- scan / index -------------------------------------------------------

    def scan(self) -> int:
        """(Re)build the index from the manifest; returns runs indexed.

        The warm-up path of a restarted service: manifest lines whose
        payload file has since vanished (or was quarantined) are
        skipped, torn lines are tolerated by :func:`read_manifest`.
        """
        records, info = read_manifest(
            self.manifest_path, record_type=RUN_RECORD_TYPE
        )
        self.manifest_bad_lines = info["bad_lines"]
        with self._lock:
            self._runs.clear()
            self._by_physics.clear()
            for rec in records:
                try:
                    run = StoredRun(
                        key=str(rec["key"]),
                        physics_key=str(rec["physics_key"]),
                        params_hash=str(rec.get("params_hash", "")),
                        stations=tuple(
                            Station(
                                name=str(name),
                                position=(float(x), float(y), float(z)),
                            )
                            for name, x, y, z in rec["stations"]
                        ),
                        n_steps=int(rec["n_steps"]),
                        dt=float(rec["dt"]),
                        path=self.runs_dir / str(rec["file"]),
                    )
                except (KeyError, TypeError, ValueError):
                    self.manifest_bad_lines += 1
                    continue
                if run.path.exists():
                    self._register(run)
            return len(self._runs)

    def find_exact(self, key: str) -> StoredRun | None:
        """The stored run addressed by exactly this request key."""
        with self._lock:
            return self._runs.get(key)

    def find_candidates(self, physics_key: str) -> list[StoredRun]:
        """Every stored run sharing a wavefield with the request.

        Candidates for answering by slicing: same physics key, possibly
        a different (larger) station set.  Insertion order — older,
        already-proven runs first.
        """
        with self._lock:
            return [
                self._runs[k]
                for k in self._by_physics.get(physics_key, [])
                if k in self._runs
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)

    # -- put / load ---------------------------------------------------------

    def put(
        self,
        key: str,
        physics_key: str,
        stations: tuple[Station, ...],
        data: np.ndarray,
        dt: float,
        params_hash: str = "",
        extra: dict | None = None,
    ) -> StoredRun:
        """Persist one run (atomic NPZ write + manifest append)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 3 or data.shape[0] != len(stations):
            raise ValueError(
                f"seismogram array shape {data.shape} does not match "
                f"{len(stations)} stations"
            )
        path = self._run_path(key)
        arrays: dict[str, np.ndarray] = {
            "data": data,
            "dt": np.asarray(float(dt)),
            "station_names": np.asarray([s.name for s in stations]),
            "station_positions": np.asarray(
                [s.position for s in stations], dtype=np.float64
            ),
            "meta_json": np.asarray(
                json.dumps(
                    {
                        "key": key,
                        "physics_key": physics_key,
                        "params_hash": params_hash,
                        **(extra or {}),
                    },
                    sort_keys=True,
                )
            ),
        }
        arrays[INTEGRITY_KEY] = checksum_payload(arrays)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        run = StoredRun(
            key=key,
            physics_key=physics_key,
            params_hash=params_hash,
            stations=tuple(stations),
            n_steps=int(data.shape[1]),
            dt=float(dt),
            path=path,
        )
        record = {
            "record_type": RUN_RECORD_TYPE,
            "key": key,
            "physics_key": physics_key,
            "params_hash": params_hash,
            "stations": [
                [s.name, *[float(v) for v in s.position]] for s in stations
            ],
            "n_steps": run.n_steps,
            "dt": run.dt,
            "file": path.name,
        }
        with self._lock:
            with open(self.manifest_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._register(run)
        self._count("puts")
        return run

    def load(self, run: StoredRun) -> np.ndarray:
        """The verified (n_stations, n_steps, 3) array of a stored run.

        Every array is re-checked against the embedded CRC32 map; a
        payload the zip layer rejects or whose checksums mismatch is
        quarantined and raises :class:`~repro.chaos.integrity
        .CacheCorruptionError` — the caller treats that as a miss and
        recomputes.
        """
        try:
            with np.load(run.path, allow_pickle=False) as raw:
                loaded = {name: np.array(raw[name]) for name in raw.files}
        except (
            OSError,
            ValueError,
            KeyError,
            zipfile.BadZipFile,
            json.JSONDecodeError,
        ) as exc:
            self._quarantine(run)
            raise CacheCorruptionError(
                f"seismogram run {run.path} is corrupt or truncated: {exc}"
            ) from exc
        try:
            if INTEGRITY_KEY not in loaded:
                raise IntegrityError("integrity map missing")
            verify_checksums(
                {k: v for k, v in loaded.items() if k != INTEGRITY_KEY},
                parse_checksum_payload(loaded[INTEGRITY_KEY]),
            )
        except IntegrityError as exc:
            self._quarantine(run)
            raise CacheCorruptionError(
                f"seismogram run {run.path} failed integrity "
                f"verification: {exc}"
            ) from exc
        self._count("loads")
        return loaded["data"]

    def stats(self) -> dict:
        """Index snapshot (what the CLI ``stats`` table prints)."""
        with self._lock:
            return {
                "runs": len(self._runs),
                "physics_groups": len(
                    [k for k, v in self._by_physics.items() if v]
                ),
                "corruptions": self.corruptions,
                "manifest_bad_lines": getattr(self, "manifest_bad_lines", 0),
            }
