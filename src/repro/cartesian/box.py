"""Cartesian box meshes — the correctness anchor for the SEM machinery.

The globe solver's kernels, assembly, and time scheme are validated here
against problems with exact solutions (Section 3 of the paper describes
the equivalent practice of benchmarking SPECFEM against semi-analytical
normal-mode seismograms).  A box of brick elements supports:

* free (natural) boundaries — standing acoustic/elastic modes;
* periodic boundaries — travelling plane waves (the cleanest dispersion
  and convergence measurements), implemented by wrapping coordinates
  before global numbering so opposite faces share degrees of freedom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gll.quadrature import gll_points_and_weights
from ..mesh.numbering import build_global_numbering

__all__ = ["BoxMesh", "build_box_mesh"]


@dataclass
class BoxMesh:
    """A structured box of spectral elements.

    ``xyz`` are GLL coordinates (nspec, n, n, n, 3); ``ibool``/``nglob``
    the global numbering (with periodic identification when requested).
    Material fields are homogeneous scalars broadcast on demand.
    """

    lengths: tuple[float, float, float]
    n_elements: tuple[int, int, int]
    xyz: np.ndarray
    ibool: np.ndarray
    nglob: int
    periodic: bool
    rho: float
    vp: float
    vs: float

    @property
    def nspec(self) -> int:
        return self.xyz.shape[0]

    @property
    def ngll(self) -> int:
        return self.xyz.shape[1]

    def material_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rho, lambda, mu) arrays at every GLL point."""
        shape = self.xyz.shape[:-1]
        rho = np.full(shape, self.rho)
        mu = np.full(shape, self.rho * self.vs**2)
        lam = np.full(shape, self.rho * self.vp**2 - 2.0 * self.rho * self.vs**2)
        return rho, lam, mu


def build_box_mesh(
    n_elements: tuple[int, int, int] = (4, 4, 4),
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0),
    ngll: int = 5,
    periodic: bool = False,
    rho: float = 1.0,
    vp: float = 1.732050807568877,
    vs: float = 1.0,
) -> BoxMesh:
    """Build a structured box mesh with optional periodic topology."""
    nx, ny, nz = n_elements
    lx, ly, lz = lengths
    if min(nx, ny, nz) < 1 or min(lx, ly, lz) <= 0:
        raise ValueError("element counts must be >= 1 and lengths positive")
    if vs < 0 or vp <= 0 or rho <= 0:
        raise ValueError("material parameters must be positive (vs may be 0)")
    nodes, _ = gll_points_and_weights(ngll)
    t = 0.5 * (nodes + 1.0)
    elems = []
    for kz in range(nz):
        for ky in range(ny):
            for kx in range(nx):
                X = (kx + t[:, None, None]) * lx / nx
                Y = (ky + t[None, :, None]) * ly / ny
                Z = (kz + t[None, None, :]) * lz / nz
                X, Y, Z = np.broadcast_arrays(X, Y, Z)
                elems.append(np.stack([X, Y, Z], axis=-1))
    xyz = np.asarray(elems)
    if periodic:
        # Identify x = L with x = 0 (each axis) by wrapping coordinates
        # before numbering; geometry keeps the unwrapped coordinates.
        wrapped = xyz.copy()
        for axis, length in enumerate((lx, ly, lz)):
            w = wrapped[..., axis]
            w[np.isclose(w, length, atol=1e-12 * max(length, 1.0))] = 0.0
        ibool, nglob = build_global_numbering(wrapped)
    else:
        ibool, nglob = build_global_numbering(xyz)
    return BoxMesh(
        lengths=(lx, ly, lz),
        n_elements=(nx, ny, nz),
        xyz=xyz,
        ibool=ibool,
        nglob=nglob,
        periodic=periodic,
        rho=rho,
        vp=vp,
        vs=vs,
    )
