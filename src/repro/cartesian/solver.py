"""Lightweight Cartesian SEM solvers (elastic and acoustic) for validation.

These reuse the production kernels, assembly, and Newmark scheme on a
:class:`~repro.cartesian.box.BoxMesh`, providing a minimal harness for the
analytic-solution convergence and conservation tests in the test suite and
the V-SEM validation benchmark.
"""

from __future__ import annotations

import numpy as np

from ..gll.lagrange import GLLBasis
from ..kernels.acoustic import compute_forces_acoustic
from ..kernels.elastic import compute_forces_elastic
from ..kernels.geometry import compute_geometry
from ..solver import newmark
from ..solver.assembly import (
    assemble_mass_matrix,
    assemble_scalar_mass_matrix,
    gather,
    scatter_add,
)
from .box import BoxMesh

__all__ = ["CartesianElasticSolver", "CartesianAcousticSolver"]


class CartesianElasticSolver:
    """Explicit elastic SEM on a box: ``M u'' = -K u``."""

    def __init__(self, mesh: BoxMesh, courant: float = 0.4, kernel_variant: str = "vectorized"):
        self.mesh = mesh
        self.basis = GLLBasis(mesh.ngll)
        self.geom = compute_geometry(mesh.xyz, self.basis)
        self.rho, self.lam, self.mu = mesh.material_arrays()
        self.kernel_variant = kernel_variant
        self.mass = assemble_mass_matrix(
            self.rho, self.geom, mesh.ibool, mesh.nglob
        )
        dx_min = self._min_gll_spacing()
        self.dt = courant * dx_min / mesh.vp
        self.displ = np.zeros((mesh.nglob, 3))
        self.veloc = np.zeros((mesh.nglob, 3))
        self.accel = np.zeros((mesh.nglob, 3))

    def _min_gll_spacing(self) -> float:
        xyz = self.mesh.xyz
        d = min(
            float(np.linalg.norm(np.diff(xyz, axis=a), axis=-1).min())
            for a in (1, 2, 3)
        )
        return d

    def set_initial_condition(
        self, displ_of_x, veloc_of_x=None
    ) -> None:
        """Set u(x, 0) (and optionally v(x, 0)) from callables of (nglob, 3) coords."""
        coords = np.empty((self.mesh.nglob, 3))
        coords[self.mesh.ibool.ravel()] = self.mesh.xyz.reshape(-1, 3)
        self.displ[:] = displ_of_x(coords)
        if veloc_of_x is not None:
            self.veloc[:] = veloc_of_x(coords)
        # Consistent initial acceleration: a0 = M^-1 (-K u0). Starting from
        # a = 0 would inject a one-time O(omega dt / 2) velocity error.
        u_local = gather(self.displ, self.mesh.ibool)
        force_local = compute_forces_elastic(
            u_local, self.geom, self.lam, self.mu, self.basis,
            variant=self.kernel_variant,
        )
        force = scatter_add(force_local, self.mesh.ibool, self.mesh.nglob)
        self.accel[:] = force / self.mass[:, None]

    def step(self) -> None:
        newmark.predictor(self.displ, self.veloc, self.accel, self.dt)
        u_local = gather(self.displ, self.mesh.ibool)
        force_local = compute_forces_elastic(
            u_local, self.geom, self.lam, self.mu, self.basis,
            variant=self.kernel_variant,
        )
        force = scatter_add(force_local, self.mesh.ibool, self.mesh.nglob)
        self.accel[:] = force / self.mass[:, None]
        newmark.corrector(self.veloc, self.accel, self.dt)

    def run(self, t_end: float) -> int:
        """March to (at least) t_end; returns the number of steps taken."""
        n = max(1, int(np.ceil(t_end / self.dt)))
        for _ in range(n):
            self.step()
        return n

    def total_energy(self) -> float:
        """Kinetic + elastic energy (uses -K u from the kernel)."""
        kinetic = 0.5 * float(np.sum(self.mass[:, None] * self.veloc**2))
        u_local = gather(self.displ, self.mesh.ibool)
        ku_local = compute_forces_elastic(
            u_local, self.geom, self.lam, self.mu, self.basis
        )
        potential = -0.5 * float(np.sum(u_local * ku_local))
        return kinetic + potential


class CartesianAcousticSolver:
    """Explicit acoustic (potential) SEM on a box: ``M chi'' = -K chi``."""

    def __init__(self, mesh: BoxMesh, courant: float = 0.4):
        self.mesh = mesh
        self.basis = GLLBasis(mesh.ngll)
        self.geom = compute_geometry(mesh.xyz, self.basis)
        shape = mesh.xyz.shape[:-1]
        self.rho_inv = np.full(shape, 1.0 / mesh.rho)
        kappa = mesh.rho * mesh.vp**2
        self.mass = assemble_scalar_mass_matrix(
            np.full(shape, 1.0 / kappa), self.geom, mesh.ibool, mesh.nglob
        )
        dx_min = min(
            float(np.linalg.norm(np.diff(mesh.xyz, axis=a), axis=-1).min())
            for a in (1, 2, 3)
        )
        self.dt = courant * dx_min / mesh.vp
        self.chi = np.zeros(mesh.nglob)
        self.chi_dot = np.zeros(mesh.nglob)
        self.chi_ddot = np.zeros(mesh.nglob)

    def set_initial_condition(self, chi_of_x, chi_dot_of_x=None) -> None:
        coords = np.empty((self.mesh.nglob, 3))
        coords[self.mesh.ibool.ravel()] = self.mesh.xyz.reshape(-1, 3)
        self.chi[:] = chi_of_x(coords)
        if chi_dot_of_x is not None:
            self.chi_dot[:] = chi_dot_of_x(coords)
        # Consistent initial acceleration (see elastic solver).
        chi_local = gather(self.chi, self.mesh.ibool)
        force_local = compute_forces_acoustic(
            chi_local, self.geom, self.rho_inv, self.basis
        )
        force = scatter_add(force_local, self.mesh.ibool, self.mesh.nglob)
        self.chi_ddot[:] = force / self.mass

    def step(self) -> None:
        newmark.predictor_scalar(self.chi, self.chi_dot, self.chi_ddot, self.dt)
        chi_local = gather(self.chi, self.mesh.ibool)
        force_local = compute_forces_acoustic(
            chi_local, self.geom, self.rho_inv, self.basis
        )
        force = scatter_add(force_local, self.mesh.ibool, self.mesh.nglob)
        self.chi_ddot[:] = force / self.mass
        newmark.corrector_scalar(self.chi_dot, self.chi_ddot, self.dt)

    def run(self, t_end: float) -> int:
        n = max(1, int(np.ceil(t_end / self.dt)))
        for _ in range(n):
            self.step()
        return n
