"""Cartesian validation problems: box meshes, solvers, analytic waves."""

from .box import BoxMesh, build_box_mesh
from .solver import CartesianAcousticSolver, CartesianElasticSolver
from .waves import (
    PlaneWave,
    acoustic_standing_mode,
    plane_p_wave,
    plane_s_wave,
)

__all__ = [
    "BoxMesh",
    "build_box_mesh",
    "CartesianAcousticSolver",
    "CartesianElasticSolver",
    "PlaneWave",
    "acoustic_standing_mode",
    "plane_p_wave",
    "plane_s_wave",
]
