"""Analytic wave solutions on the box — the validation oracles.

* :func:`plane_s_wave` / :func:`plane_p_wave`: travelling plane waves for
  the periodic box (exact solutions of the homogeneous elastodynamic
  equations, used for convergence/dispersion measurement);
* :func:`acoustic_standing_mode`: a cosine standing mode of the free-
  boundary acoustic box (satisfies the natural boundary condition of the
  weak form exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlaneWave", "plane_s_wave", "plane_p_wave", "acoustic_standing_mode"]


@dataclass(frozen=True)
class PlaneWave:
    """u(x, t) = amplitude * polarization * sin(k . x - omega t)."""

    wave_vector: np.ndarray
    polarization: np.ndarray
    speed: float
    amplitude: float = 1e-6

    @property
    def omega(self) -> float:
        return self.speed * float(np.linalg.norm(self.wave_vector))

    def displacement(self, coords: np.ndarray, t: float) -> np.ndarray:
        phase = coords @ self.wave_vector - self.omega * t
        return self.amplitude * np.sin(phase)[:, None] * self.polarization

    def velocity(self, coords: np.ndarray, t: float) -> np.ndarray:
        phase = coords @ self.wave_vector - self.omega * t
        return (
            -self.amplitude
            * self.omega
            * np.cos(phase)[:, None]
            * self.polarization
        )


def plane_s_wave(
    lengths: tuple[float, float, float],
    vs: float,
    mode: int = 1,
    amplitude: float = 1e-6,
) -> PlaneWave:
    """S wave travelling along x (periodic wavelength L/mode), polarised in z."""
    if mode < 1:
        raise ValueError("mode must be >= 1")
    k = 2.0 * np.pi * mode / lengths[0]
    return PlaneWave(
        wave_vector=np.array([k, 0.0, 0.0]),
        polarization=np.array([0.0, 0.0, 1.0]),
        speed=vs,
        amplitude=amplitude,
    )


def plane_p_wave(
    lengths: tuple[float, float, float],
    vp: float,
    mode: int = 1,
    amplitude: float = 1e-6,
) -> PlaneWave:
    """P wave travelling along x, polarised along x."""
    if mode < 1:
        raise ValueError("mode must be >= 1")
    k = 2.0 * np.pi * mode / lengths[0]
    return PlaneWave(
        wave_vector=np.array([k, 0.0, 0.0]),
        polarization=np.array([1.0, 0.0, 0.0]),
        speed=vp,
        amplitude=amplitude,
    )


def acoustic_standing_mode(
    lengths: tuple[float, float, float],
    vp: float,
    modes: tuple[int, int, int] = (1, 0, 0),
    amplitude: float = 1e-6,
):
    """Standing acoustic mode of a free-boundary box.

    chi(x, t) = A cos(kx x) cos(ky y) cos(kz z) cos(omega t), with
    omega = vp |k|.  Returns (chi_at(coords, t), omega).
    """
    k = np.array([np.pi * m / L for m, L in zip(modes, lengths)])
    omega = vp * float(np.linalg.norm(k))
    if omega == 0.0:
        raise ValueError("at least one mode number must be non-zero")

    def chi_at(coords: np.ndarray, t: float) -> np.ndarray:
        return (
            amplitude
            * np.cos(k[0] * coords[:, 0])
            * np.cos(k[1] * coords[:, 1])
            * np.cos(k[2] * coords[:, 2])
            * np.cos(omega * t)
        )

    return chi_at, omega
