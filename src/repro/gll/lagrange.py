"""Lagrange interpolants on GLL nodes and their derivative matrices.

``hprime[i, j] = l'_j(x_i)`` is the workhorse array of the SEM force
kernels: differentiating a field along one local axis of an element is a
small (5x5) matrix product with ``hprime`` applied to cutplanes of the 5^3
block of values — exactly the operation Section 4.3 of the paper vectorises
with SSE/Altivec.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .quadrature import gll_points_and_weights

__all__ = [
    "lagrange_basis",
    "lagrange_basis_derivative",
    "derivative_matrix",
    "derivative_matrix_weighted",
    "GLLBasis",
]


def lagrange_basis(nodes: np.ndarray, x: float) -> np.ndarray:
    """Evaluate all Lagrange cardinal polynomials l_j(x) for the given nodes."""
    nodes = np.asarray(nodes, dtype=np.float64)
    n = nodes.size
    values = np.ones(n)
    for j in range(n):
        for m in range(n):
            if m != j:
                values[j] *= (x - nodes[m]) / (nodes[j] - nodes[m])
    return values


def lagrange_basis_derivative(nodes: np.ndarray, x: float) -> np.ndarray:
    """Evaluate all derivatives l'_j(x) by the product-rule expansion."""
    nodes = np.asarray(nodes, dtype=np.float64)
    n = nodes.size
    derivs = np.zeros(n)
    for j in range(n):
        total = 0.0
        for k in range(n):
            if k == j:
                continue
            term = 1.0 / (nodes[j] - nodes[k])
            for m in range(n):
                if m != j and m != k:
                    term *= (x - nodes[m]) / (nodes[j] - nodes[m])
            total += term
        derivs[j] = total
    return derivs


@lru_cache(maxsize=64)
def derivative_matrix(ngll: int) -> np.ndarray:
    """The GLL differentiation matrix ``hprime`` with hprime[i, j] = l'_j(x_i).

    Applying ``hprime @ f`` to nodal values of f returns nodal values of f'
    exactly for polynomials of degree < ngll.
    """
    nodes, _ = gll_points_and_weights(ngll)
    h = np.empty((ngll, ngll))
    for i in range(ngll):
        h[i, :] = lagrange_basis_derivative(nodes, nodes[i])
    # Rows of a differentiation matrix annihilate constants; fold any
    # residual roundoff into the diagonal (the "negative sum" trick).
    h[np.arange(ngll), np.arange(ngll)] -= h.sum(axis=1)
    h.setflags(write=False)
    return h


@lru_cache(maxsize=64)
def derivative_matrix_weighted(ngll: int) -> np.ndarray:
    """``hprimewgll[i, j] = w_i * l'_j(x_i)``.

    This is the transpose-side factor of the weak-form stiffness application
    (SPECFEM's ``hprimewgll_xx``): after computing weighted stress cutplanes,
    the kernels contract against this matrix.
    """
    nodes_w = gll_points_and_weights(ngll)[1]
    h = derivative_matrix(ngll)
    hw = nodes_w[:, None] * h
    hw.setflags(write=False)
    return hw


class GLLBasis:
    """Bundle of the per-degree GLL arrays the mesher and solver need.

    Attributes
    ----------
    ngll : number of nodes per edge
    xi : nodes on [-1, 1], shape (ngll,)
    weights : quadrature weights, shape (ngll,)
    hprime : differentiation matrix, shape (ngll, ngll)
    hprime_wgll : weight-scaled differentiation matrix, shape (ngll, ngll)
    wgll3 : tensor-product weights w_i w_j w_k, shape (ngll, ngll, ngll)
    """

    def __init__(self, ngll: int = 5):
        self.ngll = int(ngll)
        self.xi, self.weights = gll_points_and_weights(self.ngll)
        self.hprime = derivative_matrix(self.ngll)
        self.hprime_wgll = derivative_matrix_weighted(self.ngll)
        self.wgll3 = (
            self.weights[:, None, None]
            * self.weights[None, :, None]
            * self.weights[None, None, :]
        )
        self.wgll3.setflags(write=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GLLBasis(ngll={self.ngll})"
