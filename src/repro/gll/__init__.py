"""Gauss-Lobatto-Legendre machinery: quadrature, Lagrange bases, interpolation."""

from .interpolation import (
    interpolate_at_point,
    interpolation_weights_3d,
    nearest_gll_index,
)
from .lagrange import (
    GLLBasis,
    derivative_matrix,
    derivative_matrix_weighted,
    lagrange_basis,
    lagrange_basis_derivative,
)
from .quadrature import gll_points_and_weights, legendre, legendre_derivative

__all__ = [
    "GLLBasis",
    "derivative_matrix",
    "derivative_matrix_weighted",
    "gll_points_and_weights",
    "interpolate_at_point",
    "interpolation_weights_3d",
    "lagrange_basis",
    "lagrange_basis_derivative",
    "legendre",
    "legendre_derivative",
    "nearest_gll_index",
]
