"""Interpolation of fields inside a spectral element.

Used by the receiver machinery: SPECFEM historically located each seismic
station at its exact (xi, eta, gamma) inside an element and interpolated
the wavefield there with the full Lagrange basis; the paper's Section 4.4
replaces this with nearest-GLL-point sampling at high resolution.  Both
paths live here.
"""

from __future__ import annotations

import numpy as np

from .lagrange import lagrange_basis
from .quadrature import gll_points_and_weights

__all__ = [
    "interpolation_weights_3d",
    "interpolate_at_point",
    "nearest_gll_index",
]


def interpolation_weights_3d(
    ngll: int, xi: float, eta: float, gamma: float
) -> np.ndarray:
    """Tensor-product Lagrange weights at a reference point (xi, eta, gamma).

    Returns an (ngll, ngll, ngll) array ``W`` with
    ``f(xi,eta,gamma) = sum_ijk W[i,j,k] f[i,j,k]``.
    """
    for name, v in (("xi", xi), ("eta", eta), ("gamma", gamma)):
        if not -1.0 - 1e-12 <= v <= 1.0 + 1e-12:
            raise ValueError(f"{name}={v} outside the reference cube [-1,1]^3")
    nodes, _ = gll_points_and_weights(ngll)
    hx = lagrange_basis(nodes, float(xi))
    hy = lagrange_basis(nodes, float(eta))
    hz = lagrange_basis(nodes, float(gamma))
    return hx[:, None, None] * hy[None, :, None] * hz[None, None, :]


def interpolate_at_point(
    values: np.ndarray, xi: float, eta: float, gamma: float
) -> np.ndarray | float:
    """Interpolate nodal ``values`` (ngll,ngll,ngll[,ncomp]) at one point."""
    values = np.asarray(values)
    ngll = values.shape[0]
    if values.shape[:3] != (ngll, ngll, ngll):
        raise ValueError(f"expected leading (n,n,n) shape, got {values.shape}")
    w = interpolation_weights_3d(ngll, xi, eta, gamma)
    if values.ndim == 3:
        return float(np.einsum("ijk,ijk->", w, values))
    return np.einsum("ijk,ijk...->...", w, values)


def nearest_gll_index(ngll: int, xi: float, eta: float, gamma: float) -> tuple[int, int, int]:
    """Index of the GLL node closest to (xi, eta, gamma) in the reference cube.

    This is the paper's high-resolution station-location shortcut: with a
    dense mesh the distance to the nearest node is geophysically negligible
    and the costly interpolation is skipped entirely.
    """
    nodes, _ = gll_points_and_weights(ngll)
    i = int(np.argmin(np.abs(nodes - xi)))
    j = int(np.argmin(np.abs(nodes - eta)))
    k = int(np.argmin(np.abs(nodes - gamma)))
    return i, j, k
