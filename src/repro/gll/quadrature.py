"""Gauss-Lobatto-Legendre (GLL) quadrature nodes and weights.

The SEM represents fields on each element by Lagrange interpolants anchored
at the GLL points, and integrates the weak form with the matching GLL rule.
Collocating interpolation and quadrature points is what makes the mass
matrix exactly diagonal (Section 2.4 of the paper).

Nodes are the roots of ``(1 - x^2) P'_n(x)`` (always including the element
boundaries -1 and +1); weights are ``2 / (n (n+1) P_n(x_i)^2)``.  The rule
with ``n+1`` points integrates polynomials up to degree ``2n - 1`` exactly.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "gll_points_and_weights",
    "legendre",
    "legendre_derivative",
]


def legendre(n: int, x: np.ndarray | float) -> np.ndarray | float:
    """Evaluate the Legendre polynomial P_n at ``x`` via the Bonnet recurrence."""
    if n < 0:
        raise ValueError(f"degree must be non-negative, got {n}")
    x = np.asarray(x, dtype=np.float64)
    p_prev = np.ones_like(x)
    if n == 0:
        return p_prev
    p = x.copy()
    for k in range(1, n):
        p, p_prev = ((2 * k + 1) * x * p - k * p_prev) / (k + 1), p
    return p


def legendre_derivative(n: int, x: np.ndarray | float) -> np.ndarray | float:
    """Evaluate P'_n at ``x`` using the standard derivative identity.

    At the endpoints x = +-1 the identity ``(1-x^2) P'_n = n (P_{n-1} - x P_n)``
    degenerates; there the exact value ``P'_n(+-1) = (+-1)^{n-1} n(n+1)/2``
    is substituted.
    """
    if n < 0:
        raise ValueError(f"degree must be non-negative, got {n}")
    x = np.asarray(x, dtype=np.float64)
    if n == 0:
        return np.zeros_like(x)
    pn = legendre(n, x)
    pnm1 = legendre(n - 1, x)
    denom = 1.0 - x * x
    interior = np.abs(denom) > 1e-14
    out = np.empty_like(x)
    out[interior] = (
        n * (pnm1[interior] - x[interior] * pn[interior]) / denom[interior]
    )
    endpoint_value = 0.5 * n * (n + 1)
    sign = np.where(x > 0, 1.0, np.where(n % 2 == 0, -1.0, 1.0))
    out[~interior] = sign[~interior] * endpoint_value
    return out


def _legendre_second_derivative(n: int, x: np.ndarray) -> np.ndarray:
    """P''_n on the open interval (-1, 1), from the Legendre ODE."""
    pn = legendre(n, x)
    dpn = legendre_derivative(n, x)
    return (2.0 * x * dpn - n * (n + 1) * pn) / (1.0 - x * x)


@lru_cache(maxsize=64)
def gll_points_and_weights(ngll: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``ngll`` GLL nodes and weights on [-1, 1].

    Nodes are computed by Newton iteration on P'_{n}(x) started from the
    Chebyshev-Gauss-Lobatto points (an excellent initial guess), with the
    endpoints fixed at exactly +-1.  Results are cached: the mesher and
    solver request the same small rule (ngll = 5) millions of times.

    Returns read-only arrays so cached values cannot be mutated in place.
    """
    if ngll < 2:
        raise ValueError(f"need at least 2 GLL points, got {ngll}")
    n = ngll - 1
    # Chebyshev-Gauss-Lobatto initial guess.
    x = -np.cos(np.pi * np.arange(ngll) / n)
    if ngll > 2:
        interior = x[1:-1].copy()
        for _ in range(100):
            f = legendre_derivative(n, interior)
            fp = _legendre_second_derivative(n, interior)
            step = f / fp
            interior -= step
            if np.max(np.abs(step)) < 1e-15:
                break
        x[1:-1] = interior
    x[0], x[-1] = -1.0, 1.0
    # Enforce the exact symmetry of the rule.
    x = 0.5 * (x - x[::-1])
    pn = legendre(n, x)
    w = 2.0 / (n * (n + 1) * pn * pn)
    x.setflags(write=False)
    w.setflags(write=False)
    return x, w
