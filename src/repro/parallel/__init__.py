"""Virtual MPI: communicators, halo assembly, distributed launcher."""

from .comm import (
    CommStats,
    RecvRequest,
    Request,
    SendRequest,
    VirtualCluster,
    VirtualComm,
)
from .errors import RankFailedError, RankTimeoutError
from .halo import HaloExchanger, PendingExchange, RegionHalo, build_halos
from .launcher import DistributedResult, run_distributed_simulation

__all__ = [
    "CommStats",
    "Request",
    "SendRequest",
    "RecvRequest",
    "VirtualCluster",
    "VirtualComm",
    "HaloExchanger",
    "PendingExchange",
    "RegionHalo",
    "build_halos",
    "DistributedResult",
    "RankFailedError",
    "RankTimeoutError",
    "run_distributed_simulation",
]
