"""Virtual MPI: communicators, halo assembly, distributed launcher.

Message tags come from the :mod:`.tags` registry (checked by the static
analyzer's rule R2); ``VirtualCluster(sanitize=True)`` wraps every rank
in the :mod:`repro.analysis.sanitizer` protocol checker.
"""

from . import tags
from .comm import (
    CommStats,
    RecvRequest,
    Request,
    SendRequest,
    VirtualCluster,
    VirtualComm,
)
from .errors import RankFailedError, RankTimeoutError
from .halo import HaloExchanger, PendingExchange, RegionHalo, build_halos
from .launcher import DistributedResult, run_distributed_simulation

__all__ = [
    "tags",
    "CommStats",
    "Request",
    "SendRequest",
    "RecvRequest",
    "VirtualCluster",
    "VirtualComm",
    "HaloExchanger",
    "PendingExchange",
    "RegionHalo",
    "build_halos",
    "DistributedResult",
    "RankFailedError",
    "RankTimeoutError",
    "run_distributed_simulation",
]
