"""Virtual MPI: communicators, halo assembly, distributed launcher."""

from .comm import CommStats, VirtualCluster, VirtualComm
from .halo import HaloExchanger, RegionHalo, build_halos
from .launcher import (
    DistributedResult,
    RankFailedError,
    RankTimeoutError,
    run_distributed_simulation,
)

__all__ = [
    "CommStats",
    "VirtualCluster",
    "VirtualComm",
    "HaloExchanger",
    "RegionHalo",
    "build_halos",
    "DistributedResult",
    "RankFailedError",
    "RankTimeoutError",
    "run_distributed_simulation",
]
