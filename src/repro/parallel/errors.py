"""Typed failure classes of the virtual-MPI layer.

These live in their own module (rather than in :mod:`.launcher`) so the
communicator itself can raise them without a circular import: a receive
that never completes raises :class:`RankTimeoutError` from inside
:meth:`~repro.parallel.comm.VirtualComm.recv`, and the campaign retry
policy (:mod:`repro.campaign.queue`) treats both classes as transient.
They remain re-exported from :mod:`repro.parallel.launcher` for
backwards compatibility.
"""

from __future__ import annotations

__all__ = ["RankFailedError", "RankTimeoutError", "RankDeathError"]


class RankFailedError(RuntimeError):
    """One (virtual) MPI rank died during a distributed run.

    Typed so a campaign retry policy can treat a rank failure as
    transient and re-submit the job; ``rank`` is the failing rank (-1 if
    unknown) and ``cause`` the original exception.
    """

    def __init__(self, rank: int, cause: BaseException):
        super().__init__(f"rank {rank} failed: {cause}")
        self.rank = rank
        self.cause = cause


class RankTimeoutError(RankFailedError, TimeoutError):
    """A rank exceeded a wall limit (a hung or lost peer).

    Raised both for a whole-program timeout in
    :meth:`~repro.parallel.comm.VirtualCluster.run` and for a single
    receive that outlives the cluster's per-receive deadline.  Also a
    :class:`TimeoutError` so callers matching on the builtin still work.
    """


class RankDeathError(RankFailedError):
    """A peer rank was *confirmed* dead while this rank waited on it.

    Raised by the failure detector's :class:`~repro.resilience.detector
    .MonitoredComm` when a blocked receive can be attributed to a peer
    that has already crashed — as opposed to :class:`RankTimeoutError`,
    which means the peer merely failed to answer within the deadline
    (a straggler or a lost message).  ``rank`` is the *dead peer*, not
    the raising rank; ``report`` carries the detector's
    :class:`~repro.resilience.detector.RankDeathReport`.

    In :meth:`~repro.parallel.comm.VirtualCluster.run`'s error triage
    this is a *secondary* failure (like a broken barrier): the dead
    rank's own exception is the root cause and wins.
    """

    def __init__(self, rank: int, cause: BaseException, report=None):
        super().__init__(rank, cause)
        self.report = report
