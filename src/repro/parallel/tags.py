"""Message-tag registry: the single source of truth for comm tag space.

Every point-to-point message in the virtual-MPI layer carries an integer
tag, and the correctness of the halo assembly rests on tags never
cross-matching: a blocking mass-matrix assembly posted during setup must
not be confused with an overlapped force exchange in flight, and the
fluid region's exchange must not match the solid regions'.  SPECFEM3D
itself guarantees this by convention; this module makes the convention a
checkable artifact.

Layout: each communication *channel* owns a base constant, and channels
that carry one message per region offset the base by the region code via
:func:`region_tag`.  Bases are spaced :data:`TAG_BLOCK` apart, so no two
channels can collide as long as region codes stay below the block size —
which :func:`region_tag` enforces at runtime and the static analyzer's
rule R2 re-checks from this file's AST on every run (distinct bases,
pairwise separation >= ``TAG_BLOCK``).

Adding a channel: define a new ``UPPER_CASE`` base constant here (the
next free multiple of ``TAG_BLOCK``) and use it — or ``region_tag(BASE,
region)`` — at the call site.  Magic integer tags at call sites in
``parallel/`` and ``solver/`` are rejected by rule R2.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT",
    "ASSEMBLE_REGION",
    "ASSEMBLE_MERGED",
    "OVERLAP_REGION",
    "OVERLAP_MERGED",
    "TAG_BLOCK",
    "region_tag",
]

#: Width reserved for each channel: region offsets must stay below this.
TAG_BLOCK = 1000

#: Untagged traffic (the communicator API's default tag).
DEFAULT = 0

#: Blocking per-region halo assembly (setup-time mass matrices and the
#: per-region force exchange of the blocking reference schedule); the
#: wire tag is ``region_tag(ASSEMBLE_REGION, region)``.
ASSEMBLE_REGION = 1000

#: Blocking merged multi-region assembly — one message per neighbour for
#: all solid regions (the paper's 33% message-count reduction).
ASSEMBLE_MERGED = 2000

#: Non-blocking per-region rounds of the overlapped schedule; offset by
#: region so a posted fluid exchange cannot match a solid one.
OVERLAP_REGION = 3000

#: Non-blocking merged rounds (the overlapped analogue of
#: :data:`ASSEMBLE_MERGED`).
OVERLAP_MERGED = 4000


def region_tag(base: int, region: int) -> int:
    """The wire tag of one region's message on a per-region channel.

    ``region`` must fit inside the channel's block, otherwise two
    channels would overlap in tag space — the collision rule R2 exists
    to prevent.
    """
    if not 0 <= region < TAG_BLOCK:
        raise ValueError(
            f"region code {region} outside the tag block [0, {TAG_BLOCK})"
        )
    return base + region
