"""Halo assembly across mesh slices — the SEM's only recurring communication.

Section 2.4 of the paper: summing elemental contributions at global points
shared between slices is the assembly stage that "involves communication
between distinct CPUs (based on message passing with MPI)".  This module
builds, from all slices' boundary geometry, the point-matched exchange
lists each rank needs, and implements the per-step exchange over a
:class:`~repro.parallel.comm.VirtualComm`.

Matching is geometric (quantised coordinates), so intra-chunk faces,
cross-chunk edges, cube/shell seams, and corner points shared by many
ranks are all handled uniformly.  Each rank sends its *local contribution*
at every shared point to every co-owner and adds what it receives, which
reproduces the assembled sum exactly (the sum is over distinct rank
contributions, each counted once).

Two exchange styles are provided:

* **blocking** — :meth:`HaloExchanger.assemble` (one region) and
  :meth:`HaloExchanger.assemble_many` (several regions packed into one
  message per neighbour, the paper's 33% message-count reduction).  One
  ``halo.exchange`` span covers the whole round.
* **non-blocking** — :meth:`HaloExchanger.post` / :meth:`HaloExchanger.wait`
  (and the merged :meth:`HaloExchanger.post_many` /
  :meth:`HaloExchanger.wait_many`): ``post`` sends this rank's shared-point
  contributions with ``isend`` and registers ``irecv`` requests, returning
  a :class:`PendingExchange`; the caller computes interior elements while
  the messages fly, then ``wait`` completes the receives and adds them.
  Posting is traced as a ``halo.post`` span and the completion as a
  ``halo.wait`` span, so the *visible* (unhidden) communication time of an
  overlapped step is exactly the ``halo.wait`` total — the quantity the
  A-OVERLAP benchmark compares against the blocking ``halo.exchange`` time.

The received-contribution add order (sorted neighbour rank, then region)
is identical between the two styles, so an overlapped run is bit-identical
to a blocking one.

Event batching: an exchanger built with ``batch=B`` exchanges batched
global arrays ``(B, nglob[, 3])`` (see :mod:`repro.solver.fields`) and
packs **all B events into one message per neighbour per step** — the
per-step message count is identical to an unbatched run, i.e. B times
fewer messages than B sequential runs.  Per event the packed values,
their order, and the receive-side adds are exactly the unbatched ones
(same sorted-neighbour order, same point order), so every event slice
of a batched exchange is bit-identical to its unbatched exchange.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..mesh.element import RegionMesh, SliceMesh
from ..mesh.interfaces import FACE_SLICES, external_faces
from ..obs.tracer import maybe_tracer
from .tags import (
    ASSEMBLE_MERGED,
    ASSEMBLE_REGION,
    OVERLAP_MERGED,
    OVERLAP_REGION,
    region_tag,
)

__all__ = [
    "RegionHalo",
    "build_halos",
    "HaloExchanger",
    "PendingExchange",
]


@dataclass
class RegionHalo:
    """One rank's exchange lists for one region.

    ``neighbors`` maps neighbor rank -> local global-point indices shared
    with that neighbor, ordered by the quantised coordinates so both sides
    enumerate the shared points identically.
    """

    region: int
    rank: int
    neighbors: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_neighbors(self) -> int:
        return len(self.neighbors)

    def total_points(self) -> int:
        return int(sum(ids.size for ids in self.neighbors.values()))

    def message_bytes(self, ncomp: int, itemsize: int = 8) -> int:
        """Bytes this rank sends per exchange of an ncomp-component field."""
        return self.total_points() * ncomp * itemsize

    def halo_point_ids(self) -> np.ndarray:
        """Sorted unique local global-point ids shared with any neighbour.

        This is the point set that separates *boundary* elements (which
        touch at least one of these points and therefore contribute to the
        outgoing halo messages) from *interior* elements (which cannot) —
        see :func:`repro.mesh.partition.split_elements`.
        """
        if not self.neighbors:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(list(self.neighbors.values())))


def _boundary_points(mesh: RegionMesh, tol: float) -> tuple[np.ndarray, np.ndarray]:
    """(quantised coords, global ids) of all points on external faces."""
    faces = external_faces(mesh.ibool)
    keys = []
    ids = []
    for ispec, face_id in faces:
        pts = mesh.xyz[(ispec, *FACE_SLICES[face_id])].reshape(-1, 3)
        gids = mesh.ibool[(ispec, *FACE_SLICES[face_id])].ravel()
        keys.append(np.round(pts / tol).astype(np.int64))
        ids.append(gids)
    if not keys:
        return np.empty((0, 3), dtype=np.int64), np.empty(0, dtype=np.int64)
    keys = np.concatenate(keys)
    ids = np.concatenate(ids)
    # Deduplicate per rank (a point may lie on several external faces).
    _, first = np.unique(keys, axis=0, return_index=True)
    return keys[np.sort(first)], ids[np.sort(first)]


def build_halos(
    slices: list[SliceMesh], tolerance_km: float = 1e-5
) -> dict[int, dict[int, RegionHalo]]:
    """Build all ranks' halos: ``halos[rank][region] -> RegionHalo``.

    Cross-matches every pair of ranks' boundary points per region.  Points
    shared by k ranks generate exchanges between all k(k-1) ordered pairs,
    which the additive exchange needs.
    """
    nranks = len(slices)
    # Collect per rank/region boundary keys.
    boundary: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    regions = set()
    for rank, sl in enumerate(slices):
        for region, mesh in sl.regions.items():
            regions.add(region)
            boundary[(rank, region)] = _boundary_points(mesh, tolerance_km)
    halos: dict[int, dict[int, RegionHalo]] = {
        rank: {
            region: RegionHalo(region=region, rank=rank)
            for region in slices[rank].regions
        }
        for rank in range(nranks)
    }
    for region in regions:
        # Global map: key tuple -> list of (rank, local global id).
        owners: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
        for rank in range(nranks):
            keys, ids = boundary.get((rank, region), (None, None))
            if keys is None:
                continue
            for key, gid in zip(map(tuple, keys), ids):
                owners.setdefault(key, []).append((rank, int(gid)))
        # Shared points -> pairwise exchange lists, keyed for ordering.
        pair_points: dict[tuple[int, int], list[tuple[tuple, int]]] = {}
        for key, own in owners.items():
            if len(own) < 2:
                continue
            for rank_a, gid_a in own:
                for rank_b, _gid_b in own:
                    if rank_a == rank_b:
                        continue
                    pair_points.setdefault((rank_a, rank_b), []).append(
                        (key, gid_a)
                    )
        for (rank_a, rank_b), entries in pair_points.items():
            entries.sort(key=lambda e: e[0])  # same order on both sides
            ids = np.asarray([gid for _, gid in entries], dtype=np.int64)
            halos[rank_a][region].neighbors[rank_b] = ids
    return halos


@dataclass
class PendingExchange:
    """An in-flight non-blocking halo round: posted sends + open receives.

    Returned by :meth:`HaloExchanger.post` / :meth:`HaloExchanger.post_many`
    and consumed exactly once by the matching ``wait``/``wait_many``.
    ``recv_requests`` maps neighbour rank -> the posted
    :class:`~repro.parallel.comm.RecvRequest`; ``send_requests`` keeps the
    posted :class:`~repro.parallel.comm.SendRequest` handles so the wait
    completes *every* request of the round — the leaked-request invariant
    rule R1 and the comm sanitizer both enforce.
    """

    regions: tuple[int, ...]
    tag: int
    recv_requests: dict[int, object] = field(default_factory=dict)
    send_requests: list = field(default_factory=list)
    bytes_sent: int = 0


class HaloExchanger:
    """Per-rank exchange engine bound to a communicator.

    ``assemble(region, array)`` sends this rank's contributions at the
    shared points of each neighbor and adds the received contributions,
    returning the fully assembled array.  Tags come from the
    :mod:`repro.parallel.tags` registry: per-region channels separate the
    fluid and solid exchanges, and the non-blocking rounds use distinct
    bases so a posted exchange can never collide with a blocking one
    (the setup-time mass assembly).

    With a tracer attached, every blocking exchange becomes a
    ``halo.exchange`` span whose counters record both directions of the
    traffic (messages, bytes, shared points) — the raw data of the paper's
    IPM summaries.  Non-blocking rounds split into a ``halo.post`` span
    (sends) and a ``halo.wait`` span (receives + adds); the wait span's
    duration is the unhidden communication time.
    """

    def __init__(
        self,
        comm,
        halos_for_rank: dict[int, RegionHalo],
        tracer=None,
        batch: int | None = None,
    ):
        self.comm = comm
        self.halos = halos_for_rank
        self.tracer = maybe_tracer(tracer)
        #: Event-batch size: None exchanges unbatched (nglob[, 3]) arrays;
        #: B exchanges batched (B, nglob[, 3]) arrays with all events in
        #: one message per neighbour (see module docstring).
        self.batch = batch
        #: Cumulative seconds blocked on halo receives (the *visible*
        #: communication time), kept even without a tracer so streaming
        #: telemetry can difference it per step at near-zero cost.
        self.wait_s = 0.0

    # -- shared pack/unpack helpers ----------------------------------------

    def _merged_neighbors(self, regions: list[int]) -> list[int]:
        """Sorted union of neighbour ranks over the given regions."""
        neighbors: set[int] = set()
        for region in regions:
            halo = self.halos.get(region)
            if halo is not None:
                neighbors.update(halo.neighbors)
        return sorted(neighbors)

    def _pack(
        self, regions: list[int], arrays: dict[int, np.ndarray], nbr: int
    ) -> np.ndarray:
        """Concatenate this rank's shared-point values for one neighbour,
        region order fixed by the (sorted) region list."""
        parts = []
        for region in regions:
            halo = self.halos.get(region)
            if halo is None or nbr not in halo.neighbors:
                continue
            ids = halo.neighbors[nbr]
            if self.batch is None:
                parts.append(arrays[region][ids].reshape(-1))
            else:
                parts.append(arrays[region][:, ids].reshape(-1))
        return np.concatenate(parts)

    def _unpack_add(
        self,
        regions: list[int],
        arrays: dict[int, np.ndarray],
        nbr: int,
        received: np.ndarray,
    ) -> None:
        """Add one neighbour's packed contribution into the target arrays."""
        offset = 0
        for region in regions:
            halo = self.halos.get(region)
            if halo is None or nbr not in halo.neighbors:
                continue
            ids = halo.neighbors[nbr]
            array = arrays[region]
            if self.batch is None:
                block_shape = (ids.size, *array.shape[1:])
            else:
                block_shape = (self.batch, ids.size, *array.shape[2:])
            count = int(np.prod(block_shape))
            block = received[offset : offset + count].reshape(block_shape)
            offset += count
            # ids are unique within one neighbor list (deduplicated at
            # construction), so plain fancy-index addition is exact.
            if self.batch is None:
                array[ids] += block
            else:
                array[:, ids] += block
        if offset != received.size:
            raise ValueError(
                f"combined halo payload from rank {nbr} has "
                f"{received.size} values, consumed {offset}"
            )

    # -- blocking exchanges -------------------------------------------------

    def assemble(self, region: int, array: np.ndarray) -> np.ndarray:
        halo = self.halos.get(region)
        if halo is None or not halo.neighbors:
            return array
        tag = region_tag(ASSEMBLE_REGION, region)
        with self.tracer.span("halo.exchange", region=region) as span:
            # Capture local contributions before any addition.
            if self.batch is None:
                outgoing = {
                    nbr: array[ids].copy()
                    for nbr, ids in sorted(halo.neighbors.items())
                }
            else:
                outgoing = {
                    nbr: array[:, ids].copy()
                    for nbr, ids in sorted(halo.neighbors.items())
                }
            sent = 0
            for nbr, payload in outgoing.items():
                self.comm.send(nbr, payload, tag=tag)
                sent += payload.nbytes
            received_bytes = 0
            t_wait = time.perf_counter()
            for nbr, ids in sorted(halo.neighbors.items()):
                received = self.comm.recv(nbr, tag=tag)
                received_bytes += received.nbytes
                # ids are unique within one neighbor list (deduplicated at
                # construction), so plain fancy-index addition is exact.
                if self.batch is None:
                    array[ids] += received
                else:
                    array[:, ids] += received
            self.wait_s += time.perf_counter() - t_wait
            span.add(
                messages=2 * len(outgoing),
                bytes=sent + received_bytes,
                points=halo.total_points(),
            )
        return array

    def assemble_many(self, arrays: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Assemble several regions with ONE message per neighbour.

        The paper's Section-1 optimisation: "reduction of MPI messages by
        33% inside each chunk by handling crust mantle and inner core
        simultaneously" — instead of one exchange per solid region, the
        shared values of all given regions are packed into a single
        message per neighbour (region order fixed by sorted region code).
        """
        regions = sorted(arrays)
        neighbors = self._merged_neighbors(regions)
        tag = ASSEMBLE_MERGED
        with self.tracer.span("halo.exchange", merged_regions=len(regions)) as span:
            sent = 0
            for nbr in neighbors:
                payload = self._pack(regions, arrays, nbr)
                self.comm.send(nbr, payload, tag=tag)
                sent += payload.nbytes
            received_bytes = 0
            t_wait = time.perf_counter()
            for nbr in neighbors:
                received = self.comm.recv(nbr, tag=tag)
                received_bytes += received.nbytes
                self._unpack_add(regions, arrays, nbr, received)
            self.wait_s += time.perf_counter() - t_wait
            span.add(messages=2 * len(neighbors), bytes=sent + received_bytes)
        return arrays

    # -- non-blocking exchanges ---------------------------------------------

    def post(self, region: int, array: np.ndarray) -> PendingExchange:
        """Post one region's halo exchange without blocking.

        ``array`` must already carry this rank's *complete* local
        contribution at every shared point — with the interior/boundary
        element split that holds after the boundary-element pass alone,
        since interior elements touch no shared point.  Returns the
        pending round for :meth:`wait`.
        """
        tag = region_tag(OVERLAP_REGION, region)
        pending = PendingExchange(regions=(region,), tag=tag)
        halo = self.halos.get(region)
        if halo is None or not halo.neighbors:
            return pending
        with self.tracer.span("halo.post", region=region) as span:
            for nbr, ids in sorted(halo.neighbors.items()):
                payload = array[ids] if self.batch is None else array[:, ids]
                pending.send_requests.append(
                    self.comm.isend(nbr, payload, tag=tag)
                )
                pending.bytes_sent += payload.nbytes
            for nbr in sorted(halo.neighbors):
                pending.recv_requests[nbr] = self.comm.irecv(nbr, tag=tag)
            span.add(
                messages=len(pending.recv_requests),
                bytes=pending.bytes_sent,
                points=halo.total_points(),
            )
        return pending

    def wait(self, pending: PendingExchange, array: np.ndarray) -> np.ndarray:
        """Complete a :meth:`post`: wait for every neighbour and add its
        contribution.  The add order (sorted neighbour rank) matches
        :meth:`assemble`, keeping the two paths bit-identical."""
        t_wait = time.perf_counter()
        for req in pending.send_requests:
            req.wait()
        if not pending.recv_requests:
            self.wait_s += time.perf_counter() - t_wait
            return array
        (region,) = pending.regions
        halo = self.halos[region]
        with self.tracer.span("halo.wait", region=region) as span:
            received_bytes = 0
            for nbr in sorted(pending.recv_requests):
                received = pending.recv_requests[nbr].wait()
                received_bytes += received.nbytes
                if self.batch is None:
                    array[halo.neighbors[nbr]] += received
                else:
                    array[:, halo.neighbors[nbr]] += received
            span.add(messages=len(pending.recv_requests), bytes=received_bytes)
        self.wait_s += time.perf_counter() - t_wait
        return array

    def post_many(self, arrays: dict[int, np.ndarray]) -> PendingExchange:
        """Non-blocking :meth:`assemble_many`: one posted message per
        neighbour carrying every given region's shared-point values."""
        regions = sorted(arrays)
        neighbors = self._merged_neighbors(regions)
        tag = OVERLAP_MERGED
        pending = PendingExchange(regions=tuple(regions), tag=tag)
        if not neighbors:
            return pending
        with self.tracer.span("halo.post", merged_regions=len(regions)) as span:
            for nbr in neighbors:
                payload = self._pack(regions, arrays, nbr)
                pending.send_requests.append(
                    self.comm.isend(nbr, payload, tag=tag)
                )
                pending.bytes_sent += payload.nbytes
            for nbr in neighbors:
                pending.recv_requests[nbr] = self.comm.irecv(nbr, tag=tag)
            span.add(messages=len(neighbors), bytes=pending.bytes_sent)
        return pending

    def wait_many(
        self, pending: PendingExchange, arrays: dict[int, np.ndarray]
    ) -> dict[int, np.ndarray]:
        """Complete a :meth:`post_many`; add order (sorted neighbour, then
        region) matches :meth:`assemble_many` bit for bit."""
        t_wait = time.perf_counter()
        for req in pending.send_requests:
            req.wait()
        if not pending.recv_requests:
            self.wait_s += time.perf_counter() - t_wait
            return arrays
        regions = list(pending.regions)
        with self.tracer.span("halo.wait", merged_regions=len(regions)) as span:
            received_bytes = 0
            for nbr in sorted(pending.recv_requests):
                received = pending.recv_requests[nbr].wait()
                received_bytes += received.nbytes
                self._unpack_add(regions, arrays, nbr, received)
            span.add(messages=len(pending.recv_requests), bytes=received_bytes)
        self.wait_s += time.perf_counter() - t_wait
        return arrays
