"""Halo assembly across mesh slices — the SEM's only recurring communication.

Section 2.4 of the paper: summing elemental contributions at global points
shared between slices is the assembly stage that "involves communication
between distinct CPUs (based on message passing with MPI)".  This module
builds, from all slices' boundary geometry, the point-matched exchange
lists each rank needs, and implements the per-step exchange over a
:class:`~repro.parallel.comm.VirtualComm`.

Matching is geometric (quantised coordinates), so intra-chunk faces,
cross-chunk edges, cube/shell seams, and corner points shared by many
ranks are all handled uniformly.  Each rank sends its *local contribution*
at every shared point to every co-owner and adds what it receives, which
reproduces the assembled sum exactly (the sum is over distinct rank
contributions, each counted once).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mesh.element import RegionMesh, SliceMesh
from ..mesh.interfaces import FACE_SLICES, external_faces
from ..obs.tracer import maybe_tracer

__all__ = ["RegionHalo", "build_halos", "HaloExchanger"]


@dataclass
class RegionHalo:
    """One rank's exchange lists for one region.

    ``neighbors`` maps neighbor rank -> local global-point indices shared
    with that neighbor, ordered by the quantised coordinates so both sides
    enumerate the shared points identically.
    """

    region: int
    rank: int
    neighbors: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_neighbors(self) -> int:
        return len(self.neighbors)

    def total_points(self) -> int:
        return int(sum(ids.size for ids in self.neighbors.values()))

    def message_bytes(self, ncomp: int, itemsize: int = 8) -> int:
        """Bytes this rank sends per exchange of an ncomp-component field."""
        return self.total_points() * ncomp * itemsize


def _boundary_points(mesh: RegionMesh, tol: float) -> tuple[np.ndarray, np.ndarray]:
    """(quantised coords, global ids) of all points on external faces."""
    faces = external_faces(mesh.ibool)
    keys = []
    ids = []
    for ispec, face_id in faces:
        pts = mesh.xyz[(ispec, *FACE_SLICES[face_id])].reshape(-1, 3)
        gids = mesh.ibool[(ispec, *FACE_SLICES[face_id])].ravel()
        keys.append(np.round(pts / tol).astype(np.int64))
        ids.append(gids)
    if not keys:
        return np.empty((0, 3), dtype=np.int64), np.empty(0, dtype=np.int64)
    keys = np.concatenate(keys)
    ids = np.concatenate(ids)
    # Deduplicate per rank (a point may lie on several external faces).
    _, first = np.unique(keys, axis=0, return_index=True)
    return keys[np.sort(first)], ids[np.sort(first)]


def build_halos(
    slices: list[SliceMesh], tolerance_km: float = 1e-5
) -> dict[int, dict[int, RegionHalo]]:
    """Build all ranks' halos: ``halos[rank][region] -> RegionHalo``.

    Cross-matches every pair of ranks' boundary points per region.  Points
    shared by k ranks generate exchanges between all k(k-1) ordered pairs,
    which the additive exchange needs.
    """
    nranks = len(slices)
    # Collect per rank/region boundary keys.
    boundary: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    regions = set()
    for rank, sl in enumerate(slices):
        for region, mesh in sl.regions.items():
            regions.add(region)
            boundary[(rank, region)] = _boundary_points(mesh, tolerance_km)
    halos: dict[int, dict[int, RegionHalo]] = {
        rank: {
            region: RegionHalo(region=region, rank=rank)
            for region in slices[rank].regions
        }
        for rank in range(nranks)
    }
    for region in regions:
        # Global map: key tuple -> list of (rank, local global id).
        owners: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
        for rank in range(nranks):
            keys, ids = boundary.get((rank, region), (None, None))
            if keys is None:
                continue
            for key, gid in zip(map(tuple, keys), ids):
                owners.setdefault(key, []).append((rank, int(gid)))
        # Shared points -> pairwise exchange lists, keyed for ordering.
        pair_points: dict[tuple[int, int], list[tuple[tuple, int]]] = {}
        for key, own in owners.items():
            if len(own) < 2:
                continue
            for rank_a, gid_a in own:
                for rank_b, _gid_b in own:
                    if rank_a == rank_b:
                        continue
                    pair_points.setdefault((rank_a, rank_b), []).append(
                        (key, gid_a)
                    )
        for (rank_a, rank_b), entries in pair_points.items():
            entries.sort(key=lambda e: e[0])  # same order on both sides
            ids = np.asarray([gid for _, gid in entries], dtype=np.int64)
            halos[rank_a][region].neighbors[rank_b] = ids
    return halos


class HaloExchanger:
    """Per-rank exchange engine bound to a communicator.

    ``assemble(region, array)`` sends this rank's contributions at the
    shared points of each neighbor and adds the received contributions,
    returning the fully assembled array.  The tag space separates regions
    so the exchanges of the fluid and solid regions cannot cross-match.

    With a tracer attached, every exchange becomes a ``halo.exchange``
    span whose counters record both directions of the traffic (messages,
    bytes, shared points) — the raw data of the paper's IPM summaries.
    """

    def __init__(
        self, comm, halos_for_rank: dict[int, RegionHalo], tracer=None
    ):
        self.comm = comm
        self.halos = halos_for_rank
        self.tracer = maybe_tracer(tracer)

    def assemble(self, region: int, array: np.ndarray) -> np.ndarray:
        halo = self.halos.get(region)
        if halo is None or not halo.neighbors:
            return array
        tag = 1000 + region
        with self.tracer.span("halo.exchange", region=region) as span:
            # Capture local contributions before any addition.
            outgoing = {
                nbr: array[ids].copy()
                for nbr, ids in sorted(halo.neighbors.items())
            }
            sent = 0
            for nbr, payload in outgoing.items():
                self.comm.send(nbr, payload, tag=tag)
                sent += payload.nbytes
            received_bytes = 0
            for nbr, ids in sorted(halo.neighbors.items()):
                received = self.comm.recv(nbr, tag=tag)
                received_bytes += received.nbytes
                # ids are unique within one neighbor list (deduplicated at
                # construction), so plain fancy-index addition is exact.
                array[ids] += received
            span.add(
                messages=2 * len(outgoing),
                bytes=sent + received_bytes,
                points=halo.total_points(),
            )
        return array

    def assemble_many(self, arrays: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Assemble several regions with ONE message per neighbour.

        The paper's Section-1 optimisation: "reduction of MPI messages by
        33% inside each chunk by handling crust mantle and inner core
        simultaneously" — instead of one exchange per solid region, the
        shared values of all given regions are packed into a single
        message per neighbour (region order fixed by sorted region code).
        """
        regions = sorted(arrays)
        neighbors: set[int] = set()
        for region in regions:
            halo = self.halos.get(region)
            if halo is not None:
                neighbors.update(halo.neighbors)
        tag = 2000
        with self.tracer.span("halo.exchange", merged_regions=len(regions)) as span:
            sent = 0
            for nbr in sorted(neighbors):
                parts = []
                for region in regions:
                    halo = self.halos.get(region)
                    if halo is None or nbr not in halo.neighbors:
                        continue
                    parts.append(
                        arrays[region][halo.neighbors[nbr]].reshape(-1)
                    )
                payload = np.concatenate(parts)
                self.comm.send(nbr, payload, tag=tag)
                sent += payload.nbytes
            received_bytes = 0
            for nbr in sorted(neighbors):
                received = self.comm.recv(nbr, tag=tag)
                received_bytes += received.nbytes
                offset = 0
                for region in regions:
                    halo = self.halos.get(region)
                    if halo is None or nbr not in halo.neighbors:
                        continue
                    ids = halo.neighbors[nbr]
                    array = arrays[region]
                    block_shape = (ids.size, *array.shape[1:])
                    count = int(np.prod(block_shape))
                    block = received[offset : offset + count].reshape(block_shape)
                    offset += count
                    array[ids] += block
                if offset != received.size:
                    raise ValueError(
                        f"combined halo payload from rank {nbr} has "
                        f"{received.size} values, consumed {offset}"
                    )
            span.add(messages=2 * len(neighbors), bytes=sent + received_bytes)
        return arrays
