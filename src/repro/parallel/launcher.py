"""Distributed simulation launcher: SPMD solver runs on the virtual cluster.

Reproduces the structure of a real SPECFEM3D_GLOBE run: every rank meshes
its own slice, assembles its mass matrix across slice boundaries, agrees
on a global time step (min-allreduce), marches the same time loop, and
exchanges halo contributions after every force evaluation.  Seismograms
are gathered at rank 0.

With ``overlap=True`` (or ``params.overlap_comm``) each rank classifies
its elements into halo-touching and interior sets up front and the solver
switches to the overlapped schedule: boundary forces first, non-blocking
halo post, interior forces while the messages are in flight, then wait —
bit-identical to the blocking reference path.

The per-rank communication statistics collected by the virtual
communicators are returned alongside the results — they are the raw
measurements behind the Figure 6/7 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..config.parameters import SimulationParameters
from ..cubed_sphere.topology import SliceGrid
from ..mesh.mesher import build_slice_mesh
from ..mesh.partition import split_slice_elements
from ..model.perturbations import SyntheticTomography
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..solver.receivers import Station
from ..solver.solver import GlobalSolver
from .comm import CommStats, VirtualCluster, VirtualComm
from .errors import RankDeathError, RankFailedError, RankTimeoutError
from .halo import HaloExchanger, build_halos

__all__ = [
    "DistributedResult",
    "EpochPlan",
    "RankDeathError",
    "RankFailedError",
    "RankTimeoutError",
    "WorldSetup",
    "prepare_world",
    "run_distributed_simulation",
]


@dataclass
class DistributedResult:
    """Outcome of a distributed run.

    For event-batched runs (``event_sources``) ``seismograms`` carries a
    leading event axis: (B, n_stations, n_steps, 3) instead of
    (n_stations, n_steps, 3).
    """

    seismograms: np.ndarray | None
    station_names: list[str]
    times: np.ndarray
    dt: float
    n_steps: int
    comm_stats: list[CommStats]
    rank_compute_s: list[float]
    rank_compute_cpu_s: list[float]
    rank_elements: list[int]
    #: Per-rank tracers and metrics registries when the run was traced
    #: (``trace=True``), else None.  ``tracers[rank].records`` carries the
    #: mesher/solver/halo spans of that virtual rank.
    tracers: list[Tracer] | None = None
    metrics: list[MetricsRegistry] | None = None
    #: Comm-sanitizer report when the run was sanitized
    #: (``sanitize=True``), else None.  Clean runs have
    #: ``sanitizer_report.clean`` true.
    sanitizer_report: "object | None" = None

    @property
    def total_comm_time_s(self) -> float:
        return sum(s.comm_time_s for s in self.comm_stats)

    @property
    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.comm_stats)

    def merged_metrics(self) -> MetricsRegistry | None:
        """All ranks' metrics folded into one registry."""
        if self.metrics is None:
            return None
        return MetricsRegistry.merged(self.metrics)


def _assign_stations(
    stations: list[Station], slices: list
) -> dict[int, list[Station]]:
    """Give each station to the single rank owning the nearest mesh point.

    Mirrors the paper's observation that "some mesh slices carry more
    seismic stations than others": assignment is by geometry, so uneven
    station sets load ranks unevenly.
    """
    from ..model.prem import RegionCode

    assignment: dict[int, list[Station]] = {}
    for station in stations:
        target = np.asarray(station.position)
        best_rank, best_d = -1, np.inf
        for rank, sl in enumerate(slices):
            mesh = sl.regions[RegionCode.CRUST_MANTLE]
            d = np.min(np.linalg.norm(mesh.xyz.reshape(-1, 3) - target, axis=1))
            if d < best_d - 1e-12:
                best_rank, best_d = rank, d
        assignment.setdefault(best_rank, []).append(station)
    return assignment


@dataclass
class WorldSetup:
    """Everything rank programs need that is derived *before* the cluster
    starts: the partition, halos, station/source assignment, and the
    globally agreed time step.

    Built by :func:`prepare_world`.  The run supervisor
    (:mod:`repro.resilience.supervisor`) builds one per world size and
    reuses it across recovery epochs, so a respawn restarts the time
    loop without re-meshing and a shrink re-partitions exactly once.
    """

    params: SimulationParameters
    grid: SliceGrid
    slices: list
    halos: dict
    splits: list | None
    station_assignment: dict[int, list[Station]]
    sources_of_rank: dict[int, list]
    event_sources_of_rank: dict[int, list[list]] | None
    nbatch: int | None
    dt_global: float
    overlap: bool

    @property
    def size(self) -> int:
        return self.grid.nproc_total


def prepare_world(
    params: SimulationParameters,
    sources: list | None = None,
    stations: list[Station] | None = None,
    overlap: bool | None = None,
    event_sources: list[list] | None = None,
    tracer_of: "Callable[[int], Tracer | None] | None" = None,
) -> WorldSetup:
    """Mesh, partition, and assign one world (see :class:`WorldSetup`).

    Deterministic for fixed inputs: slice meshing, halo construction,
    element splits, nearest-point station/source assignment, and the
    min-allreduced time step all depend only on ``params`` and the
    geometry — which is the foundation of the respawn bit-identity
    argument (docs/resilience.md).
    """
    if event_sources is not None and sources is not None:
        raise ValueError("pass either sources or event_sources, not both")
    nbatch = len(event_sources) if event_sources is not None else None
    if overlap is None:
        overlap = params.overlap_comm
    grid = SliceGrid(params.nproc_xi)
    tomography = (
        SyntheticTomography(seed=params.seed) if params.use_3d_model else None
    )

    def _tracer(rank: int):
        return tracer_of(rank) if tracer_of is not None else None

    # Mesh all slices up front (the merged-application mode of Section 4.1:
    # mesher output stays in memory and is handed to the solver directly).
    slices = [
        build_slice_mesh(
            params,
            grid.address_of(rank),
            tomography=tomography,
            tracer=_tracer(rank),
        )
        for rank in range(grid.nproc_total)
    ]
    halos = build_halos(slices)
    # Interior/boundary element classification for the overlapped schedule,
    # precomputed per rank from the same halos the exchanger will use.
    splits = (
        [split_slice_elements(slices[r], halos[r]) for r in range(grid.nproc_total)]
        if overlap
        else None
    )
    station_assignment = _assign_stations(stations or [], slices)
    # Sources must be injected by exactly one rank (the halo assembly then
    # propagates shared-point contributions); assign like stations.
    source_stations = [
        Station(f"__src{i}", tuple(np.asarray(s.position)))
        for i, s in enumerate(sources or [])
    ]
    source_assignment = _assign_stations(source_stations, slices)
    sources_of_rank: dict[int, list] = {}
    for rank, pseudo in source_assignment.items():
        for p in pseudo:
            index = int(p.name[5:])
            sources_of_rank.setdefault(rank, []).append(sources[index])
    # Batched: assign each event's sources independently (same nearest-point
    # rule), giving every rank a B-long list of per-event source lists —
    # empty lists for events with no source in that rank's slice.
    event_sources_of_rank: dict[int, list[list]] | None = None
    if event_sources is not None:
        event_sources_of_rank = {}
        for b, ev_srcs in enumerate(event_sources):
            pseudo_b = [
                Station(f"__src{i}", tuple(np.asarray(s.position)))
                for i, s in enumerate(ev_srcs)
            ]
            for rank, plist in _assign_stations(pseudo_b, slices).items():
                per_rank = event_sources_of_rank.setdefault(
                    rank, [[] for _ in range(nbatch)]
                )
                for p in plist:
                    per_rank[b].append(ev_srcs[int(p.name[5:])])
    # Agree on the global time step before building any solver: attenuation
    # coefficients depend on dt, so it must be fixed up front.
    from ..mesh.quality import estimate_time_step
    from ..solver.solver import LENGTH_SCALE

    dt_global = min(
        estimate_time_step(
            list(sl.regions.values()),
            courant=params.courant,
            length_scale=LENGTH_SCALE,
        )
        for sl in slices
    )
    return WorldSetup(
        params=params,
        grid=grid,
        slices=slices,
        halos=halos,
        splits=splits,
        station_assignment=station_assignment,
        sources_of_rank=sources_of_rank,
        event_sources_of_rank=event_sources_of_rank,
        nbatch=nbatch,
        dt_global=dt_global,
        overlap=overlap,
    )


@dataclass
class EpochPlan:
    """Checkpoint/restore instructions for one supervised epoch.

    The run supervisor marches a run as a sequence of *epochs*: each
    epoch starts at ``start_step`` (0 for the first), restores solver
    state through ``restore`` (checkpoint load for respawn, remapped
    in-memory state for shrink), saves a checkpoint through ``save``
    whenever the time loop crosses a step in ``checkpoint_steps``, and
    pins the time step to ``dt_pin`` so every epoch's attenuation
    coefficients — which depend on dt — match the first world's.
    """

    start_step: int = 0
    checkpoint_steps: tuple[int, ...] = ()
    #: ``save(rank, solver, step)`` — called after the loop reaches
    #: ``step`` (exclusive stop), with all state at exactly that step.
    save: "Callable[[int, GlobalSolver, int], None] | None" = None
    #: ``restore(rank, solver)`` — called once per rank before marching,
    #: must leave the solver consistent with ``start_step``.
    restore: "Callable[[int, GlobalSolver], None] | None" = None
    dt_pin: float | None = None

    def boundaries(self, total_steps: int) -> list[tuple[int, int]]:
        """Sub-spans of [start_step, total_steps) cut at checkpoints."""
        cuts = sorted(
            {
                s
                for s in self.checkpoint_steps
                if self.start_step < s < total_steps
            }
        )
        edges = [self.start_step, *cuts, total_steps]
        return [
            (edges[i], edges[i + 1])
            for i in range(len(edges) - 1)
            if edges[i] < edges[i + 1]
        ]


def run_distributed_simulation(
    params: SimulationParameters,
    sources: list | None = None,
    stations: list[Station] | None = None,
    n_steps: int | None = None,
    timeout_s: float = 600.0,
    combine_solid_messages: bool = True,
    trace: bool = False,
    overlap: bool | None = None,
    n_segments: int = 1,
    fault_plan=None,
    recv_timeout_s: float | None = None,
    sanitize: bool = False,
    stream_dir: str | Path | None = None,
    event_sources: list[list] | None = None,
    failure_detector=None,
    world: WorldSetup | None = None,
    epoch_plan: EpochPlan | None = None,
) -> DistributedResult:
    """Run one simulation over 6 * NPROC_XI^2 virtual MPI ranks.

    All ranks execute the same program on threads; the returned result
    contains rank-0-gathered seismograms plus per-rank communication and
    compute accounting.  With ``trace=True`` every rank records mesher/
    solver/halo spans into its own tracer (``result.tracers``), merged
    into one report by :mod:`repro.obs.report`.

    ``overlap`` selects the non-blocking overlapped halo schedule
    (default: ``params.overlap_comm``); ``timeout_s`` bounds both the
    whole run and every individual blocking receive (a hung peer raises
    :class:`RankTimeoutError` rather than deadlocking).  ``n_segments``
    splits the marching into that many back-to-back ``solver.run``
    segments over one shared time grid (the campaign restart pattern),
    exercising state carry-over without changing the results.

    ``fault_plan`` (a :class:`~repro.chaos.faults.FaultPlan`) wraps every
    rank's communicator in a fault-injecting ``ChaosComm`` — the chaos
    drills run this very function unchanged under injected message drops
    and rank crashes.  ``recv_timeout_s`` shortens the per-receive (and
    barrier) deadline below ``timeout_s``, so a dropped message surfaces
    as :class:`RankTimeoutError` quickly instead of after the full
    program timeout.  When ``params.health_check_every`` is set, every
    rank's solver runs a :class:`~repro.chaos.sentinel.HealthSentinel`
    labelled with its own rank.

    ``sanitize=True`` wraps every rank's communicator in a
    :class:`~repro.analysis.sanitizer.SanitizerComm`; the finalized
    :class:`~repro.analysis.sanitizer.SanitizerReport` (unmatched sends,
    leaked requests, double-waits, tag collisions) is returned as
    ``result.sanitizer_report``.

    ``stream_dir`` turns on live streaming telemetry: every rank writes
    per-step samples (wall/compute/comm split, halo-wait, health values)
    to ``<stream_dir>/rank<NNNN>.stream.jsonl`` through a
    :class:`~repro.obs.stream.StreamingTelemetry` ring buffer, flushed
    periodically so a long run can be watched with ``tail -f``.

    ``event_sources`` (mutually exclusive with ``sources``) runs B events
    at once through one batched solver per rank: entry b is event b's
    source list.  Every rank's halo exchanger packs all B events into ONE
    message per neighbour per step (docs/batching.md), and the returned
    ``seismograms`` gain a leading event axis (B, n_stations, n_steps, 3)
    — event slice b bit-identical to a separate run with ``sources=
    event_sources[b]``.

    The three resilience hooks (all used by
    :class:`~repro.resilience.supervisor.RunSupervisor`):
    ``failure_detector`` (a
    :class:`~repro.resilience.detector.FailureDetector`) arms the
    cluster's per-rank ``MonitoredComm`` wrappers so peer deaths surface
    as fast typed :class:`RankDeathError`\\ s; ``world`` supplies a
    prebuilt :class:`WorldSetup` so a recovery epoch skips re-meshing;
    ``epoch_plan`` (an :class:`EpochPlan`) makes the run start mid-loop
    from restored state and save checkpoints at chosen steps.
    """
    import time as _time

    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    if event_sources is not None:
        if sources is not None:
            raise ValueError("pass either sources or event_sources, not both")
        if len(event_sources) == 0:
            raise ValueError("event_sources must contain at least one event")

    # One epoch for every rank's tracer so merged timelines align.
    tracer_epoch = _time.perf_counter() if trace else None
    nproc_total = (
        world.size if world is not None else SliceGrid(params.nproc_xi).nproc_total
    )
    tracers: list[Tracer] | None = (
        [Tracer(pid=rank, epoch=tracer_epoch) for rank in range(nproc_total)]
        if trace
        else None
    )
    metrics: list[MetricsRegistry] | None = (
        [MetricsRegistry(rank=rank) for rank in range(nproc_total)]
        if trace
        else None
    )

    def _tracer(rank: int):
        return tracers[rank] if tracers is not None else None

    if world is None:
        world = prepare_world(
            params,
            sources=sources,
            stations=stations,
            overlap=overlap,
            event_sources=event_sources,
            tracer_of=_tracer if trace else None,
        )
    # The world fixes partition, schedule, and batching; per-call arguments
    # must not silently disagree with a prebuilt one.
    overlap = world.overlap
    nbatch = world.nbatch
    grid = world.grid
    slices = world.slices
    halos = world.halos
    splits = world.splits
    station_assignment = world.station_assignment
    sources_of_rank = world.sources_of_rank
    event_sources_of_rank = world.event_sources_of_rank or {}
    # The supervisor pins dt across recovery epochs (attenuation
    # coefficients depend on it); an unsupervised run uses the world's
    # min-allreduced step.
    dt_global = world.dt_global
    if epoch_plan is not None and epoch_plan.dt_pin is not None:
        dt_global = epoch_plan.dt_pin

    def program(comm: VirtualComm):
        rank = comm.rank
        rank_tracer = _tracer(rank)
        rank_metrics = metrics[rank] if metrics is not None else None
        exchanger = HaloExchanger(
            comm, halos[rank], tracer=rank_tracer, batch=nbatch
        )
        # Mass matrices are assembled UNBATCHED at setup (they are shared
        # across events), so a batched run needs a second, unbatched
        # exchanger dedicated to mass assembly.
        mass_exchanger = (
            HaloExchanger(comm, halos[rank], tracer=rank_tracer)
            if nbatch is not None
            else exchanger
        )
        my_stations = station_assignment.get(rank, [])
        sentinel = None
        if params.health_check_every is not None:
            from ..chaos.sentinel import HealthSentinel

            sentinel = HealthSentinel(
                check_every=params.health_check_every, rank=rank
            )
        stream = None
        if stream_dir is not None:
            from ..obs.stream import StreamingTelemetry

            stream = StreamingTelemetry(
                Path(stream_dir) / f"rank{rank:04d}.stream.jsonl",
                meta={"rank": rank, "nex_xi": params.nex_xi},
                comm_time_fn=lambda: comm.stats.comm_time_s,
                halo_wait_fn=lambda: exchanger.wait_s,
            )
        solver = GlobalSolver(
            slices[rank],
            params,
            sources=sources_of_rank.get(rank, []),
            stations=my_stations or None,
            assembler=lambda region, arr: exchanger.assemble(region, arr),
            mass_assembler=lambda region, arr: mass_exchanger.assemble(
                region, arr
            ),
            multi_assembler=(
                exchanger.assemble_many if combine_solid_messages else None
            ),
            event_sources=(
                event_sources_of_rank.get(rank)
                or [[] for _ in range(nbatch)]
                if nbatch is not None
                else None
            ),
            dt_override=dt_global,
            tracer=rank_tracer,
            metrics=rank_metrics,
            overlap_exchanger=exchanger if overlap else None,
            element_splits=splits[rank] if overlap else None,
            health_sentinel=sentinel,
            stream=stream,
        )
        # The allreduce a real run would perform (a no-op on equal values,
        # but it exercises and accounts the collective).
        solver.dt = comm.allreduce(solver.dt, op="min")
        steps = n_steps if n_steps is not None else solver.n_steps
        steps = int(comm.allreduce(steps, op="min"))
        # Solver-side faults (poison, crash-at-step) fire through the
        # plan's step callback — None when no plan is armed, so the
        # common path pays nothing.
        run_callbacks = (
            [fault_plan.solver_callback(rank)] if fault_plan is not None else None
        )
        try:
            if epoch_plan is not None:
                if epoch_plan.restore is not None:
                    epoch_plan.restore(rank, solver)
                checkpoint_at = set(epoch_plan.checkpoint_steps)
                spans = epoch_plan.boundaries(steps) or [
                    (min(epoch_plan.start_step, steps), steps)
                ]
                for seg_start, seg_stop in spans:
                    result = solver.run(
                        n_steps=steps,
                        start_step=seg_start,
                        stop_step=seg_stop,
                        callbacks=run_callbacks,
                    )
                    if epoch_plan.save is not None and seg_stop in checkpoint_at:
                        epoch_plan.save(rank, solver, seg_stop)
            elif n_segments <= 1:
                result = solver.run(n_steps=steps, callbacks=run_callbacks)
            else:
                # Lazy import: campaign sits above parallel in the layering
                # and imports this module, so a top-level import would be
                # circular.
                from ..campaign.segments import segment_boundaries

                for seg_start, seg_stop in segment_boundaries(steps, n_segments):
                    result = solver.run(
                        n_steps=steps,
                        start_step=seg_start,
                        stop_step=seg_stop,
                        callbacks=run_callbacks,
                    )
        finally:
            if stream is not None:
                stream.close()
        if rank_metrics is not None:
            s = comm.stats
            rank_metrics.counter("comm.messages").add(
                s.messages_sent + s.messages_received
            )
            rank_metrics.counter("comm.bytes").add(
                s.bytes_sent + s.bytes_received
            )
            denom = s.comm_time_s + result.timings.compute_s
            rank_metrics.gauge("comm.fraction").set(
                s.comm_time_s / denom if denom > 0 else 0.0, rank=rank
            )
        payload = {
            "names": [s.name for s in my_stations],
            "data": result.seismograms,
            "compute_s": result.timings.compute_s,
            "compute_cpu_s": result.timings.compute_cpu_s,
            "elements": slices[rank].nspec_total,
            "dt": solver.dt,
        }
        return comm.gather(payload, root=0)

    cluster = VirtualCluster(
        grid.nproc_total,
        recv_timeout_s=recv_timeout_s,
        fault_plan=fault_plan,
        sanitize=sanitize,
        failure_detector=failure_detector,
    )
    try:
        results = cluster.run(program, timeout=timeout_s)
    # Order matters: RankTimeoutError is both a RankFailedError and a
    # TimeoutError, and an in-program one already names the failing rank —
    # re-raise it untouched instead of re-wrapping it rank-less.
    except RankFailedError:
        raise
    except TimeoutError as exc:
        raise RankTimeoutError(getattr(exc, "failed_rank", -1), exc) from exc
    except Exception as exc:
        raise RankFailedError(getattr(exc, "failed_rank", -1), exc) from exc
    gathered = results[0]
    names: list[str] = []
    data_blocks: list[np.ndarray] = []
    compute_s: list[float] = []
    compute_cpu_s: list[float] = []
    elements: list[int] = []
    dt = 0.0
    for payload in gathered:
        compute_s.append(payload["compute_s"])
        compute_cpu_s.append(payload["compute_cpu_s"])
        elements.append(payload["elements"])
        dt = payload["dt"]
        if payload["data"] is not None:
            names.extend(payload["names"])
            data_blocks.append(payload["data"])
    # Batched blocks are (B, nrec_rank, steps, 3): the step axis moves to
    # position 2 and ranks concatenate along the receiver axis (1).
    step_axis = 1 if nbatch is None else 2
    steps = data_blocks[0].shape[step_axis] if data_blocks else (n_steps or 0)
    # A source in a slice-boundary element is legitimately owned by several
    # ranks; the solver injects it in each, but seismograms are recorded
    # once per station (stations are assigned uniquely), so plain
    # concatenation is correct.
    seismograms = (
        np.concatenate(data_blocks, axis=0 if nbatch is None else 1)
        if data_blocks
        else None
    )
    return DistributedResult(
        seismograms=seismograms,
        station_names=names,
        times=np.arange(steps) * dt,
        dt=dt,
        n_steps=steps,
        comm_stats=cluster.stats,
        rank_compute_s=compute_s,
        rank_compute_cpu_s=compute_cpu_s,
        rank_elements=elements,
        tracers=tracers,
        metrics=metrics,
        sanitizer_report=cluster.sanitizer_report,
    )
