"""Virtual MPI: communicator API with message accounting.

The execution environment has no MPI; this module provides an in-process
substitute with mpi4py-like semantics.  Rank programs run as Python
threads (NumPy releases the GIL, so element work overlaps) and communicate
through thread-safe mailboxes.  Every operation is accounted — message
counts, byte volumes, and wall-clock time blocked in communication — which
is exactly the data the paper's IPM measurements provide for the
communication model of Figure 6.

Two point-to-point styles are offered, mirroring MPI:

* **blocking**: :meth:`VirtualComm.send` / :meth:`VirtualComm.recv` —
  the send is eager (buffered), the receive blocks until matched;
* **non-blocking**: :meth:`VirtualComm.isend` / :meth:`VirtualComm.irecv`
  return request handles completed by ``wait``/:meth:`VirtualComm.waitall`.
  This is what the comm/compute-overlapped time loop uses: post the halo
  messages, compute interior elements while they are in flight, then wait.
  Byte/message accounting is identical to the blocking path (sends are
  counted when posted, receives when completed); only the *blocked* time
  inside ``wait`` lands in ``comm_time_s``, so overlap genuinely shrinks
  the measured communication time.

A receive that never completes raises the typed
:class:`~repro.parallel.errors.RankTimeoutError`.  The per-receive
deadline defaults to the cluster's program timeout (``VirtualCluster.run
(..., timeout=...)``) rather than a private constant, so a single lost
message and a hung program surface through the same typed error.
Barriers carry the same deadline: a rank whose peers never arrive raises
:class:`RankTimeoutError` instead of blocking forever.

Fault injection: ``VirtualCluster(fault_plan=...)`` wraps every rank's
communicator in a :class:`~repro.chaos.faults.ChaosComm`, so a seeded
:class:`~repro.chaos.faults.FaultPlan` can drop, delay, duplicate, or
bit-flip messages and crash or stall chosen ranks — without the rank
programs (or the halo exchanger) changing at all.

Communication sanitizing: ``VirtualCluster(sanitize=True)`` wraps every
rank's communicator in a
:class:`~repro.analysis.sanitizer.SanitizerComm` at the same seam, and
after :meth:`VirtualCluster.run` the cluster's ``sanitizer_report``
holds a :class:`~repro.analysis.sanitizer.SanitizerReport`: unmatched
sends, never-completed requests, double-waits, tag collisions, and — on
a receive timeout — the rank wait-for graph with any deadlock cycle.
When both a fault plan and the sanitizer are active, the chaos wrapper
sits *outside* the sanitizer, so the sanitizer observes the disturbed
message stream actually on the wire.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from . import tags
from .errors import RankDeathError, RankTimeoutError

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from ..analysis.sanitizer import SanitizerReport
    from ..chaos.faults import FaultPlan
    from ..resilience.detector import FailureDetector

__all__ = [
    "CommStats",
    "Request",
    "SendRequest",
    "RecvRequest",
    "VirtualComm",
    "VirtualCluster",
]

#: Reduction operators :meth:`VirtualComm.allreduce` understands.
ALLREDUCE_OPS = ("sum", "min", "max")


@dataclass
class CommStats:
    """Per-rank communication accounting (the IPM-analog raw data)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    comm_time_s: float = 0.0
    barriers: int = 0
    allreduces: int = 0


class Request:
    """Handle of one non-blocking operation (MPI_Request analogue)."""

    def wait(self, timeout: float | None = None):
        raise NotImplementedError

    @property
    def done(self) -> bool:
        raise NotImplementedError


class SendRequest(Request):
    """Completed-at-post send handle: virtual sends are eager (buffered),
    so ``isend`` finishes immediately; the handle exists for API symmetry
    (``waitall`` over mixed send/recv request lists)."""

    __slots__ = ()

    def wait(self, timeout: float | None = None) -> None:
        return None

    @property
    def done(self) -> bool:
        return True


class RecvRequest(Request):
    """In-flight receive: ``wait()`` blocks until the matching message
    arrives, accounts it, and returns the payload (idempotent)."""

    __slots__ = ("_comm", "source", "tag", "_data")

    def __init__(self, comm: "VirtualComm", source: int, tag: int):
        self._comm = comm
        self.source = source
        self.tag = tag
        self._data: np.ndarray | None = None

    def wait(self, timeout: float | None = None) -> np.ndarray:
        if self._data is None:
            self._data = self._comm._complete_recv(self.source, self.tag, timeout)
        return self._data

    @property
    def done(self) -> bool:
        return self._data is not None


class VirtualComm:
    """One rank's endpoint in a :class:`VirtualCluster`."""

    def __init__(self, cluster: "VirtualCluster", rank: int):
        self._cluster = cluster
        self.rank = rank
        self.size = cluster.size
        self.stats = CommStats()

    # -- point to point -----------------------------------------------------

    def send(
        self, dest: int, payload: np.ndarray, tag: int = tags.DEFAULT
    ) -> None:
        """Eager (buffered) send: copies the payload into the mailbox."""
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        if dest == self.rank:
            raise ValueError("self-send is not supported")
        data = np.array(payload, copy=True)
        self._cluster._mailbox(dest).put((self.rank, tag, data))
        self.stats.messages_sent += 1
        self.stats.bytes_sent += data.nbytes

    def recv(
        self, source: int, tag: int = tags.DEFAULT, timeout: float | None = None
    ) -> np.ndarray:
        """Blocking receive matched on (source, tag).

        ``timeout=None`` uses the cluster's per-receive deadline (which
        defaults to the program timeout of :meth:`VirtualCluster.run`);
        expiry raises :class:`~repro.parallel.errors.RankTimeoutError`.
        """
        return self._complete_recv(source, tag, timeout)

    def isend(
        self, dest: int, payload: np.ndarray, tag: int = tags.DEFAULT
    ) -> SendRequest:
        """Non-blocking send.  Virtual sends are eager, so the returned
        request is already complete; accounting matches :meth:`send`."""
        self.send(dest, payload, tag)
        return SendRequest()

    def irecv(self, source: int, tag: int = tags.DEFAULT) -> RecvRequest:
        """Post a non-blocking receive; complete it with ``wait()``.

        Nothing is matched (and nothing accounted) until the wait — the
        overlap pattern is ``req = irecv(...); <compute>; data = req.wait()``
        so only genuinely blocked time lands in ``comm_time_s``.
        """
        return RecvRequest(self, source, tag)

    def waitall(
        self, requests: list[Request], timeout: float | None = None
    ) -> list[np.ndarray | None]:
        """Complete every request, returning their results in order
        (payload arrays for receives, ``None`` for sends)."""
        return [req.wait(timeout) for req in requests]

    def _complete_recv(
        self, source: int, tag: int, timeout: float | None
    ) -> np.ndarray:
        effective = (
            timeout if timeout is not None else self._cluster.recv_timeout_s
        )
        t0 = time.perf_counter()
        try:
            data = self._cluster._match(self.rank, source, tag, effective)
        except TimeoutError as exc:
            raise RankTimeoutError(self.rank, exc) from exc
        finally:
            self.stats.comm_time_s += time.perf_counter() - t0
        self.stats.messages_received += 1
        self.stats.bytes_received += data.nbytes
        return data

    def sendrecv(
        self, dest: int, payload: np.ndarray, source: int, tag: int = tags.DEFAULT
    ) -> np.ndarray:
        """Exchange with distinct peers without deadlock (send is eager)."""
        self.send(dest, payload, tag)
        return self.recv(source, tag)

    # -- collectives -------------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank arrives — bounded by the same per-receive
        deadline as :meth:`recv`, so a hung or dead peer raises
        :class:`~repro.parallel.errors.RankTimeoutError` instead of
        wedging this rank forever.
        """
        deadline = self._cluster.recv_timeout_s
        t0 = time.perf_counter()
        try:
            self._cluster._barrier.wait(timeout=deadline)
        except threading.BrokenBarrierError:
            elapsed = time.perf_counter() - t0
            self.stats.comm_time_s += elapsed
            if elapsed >= deadline - 1e-3:
                # Our own wait expired: the peers never arrived.
                raise RankTimeoutError(
                    self.rank,
                    TimeoutError(
                        f"rank {self.rank}: barrier not reached by all "
                        f"ranks within {deadline}s"
                    ),
                ) from None
            # Broken by another rank's abort — a secondary effect of the
            # first real failure; re-raise so run() can filter it out.
            raise
        self.stats.comm_time_s += time.perf_counter() - t0
        self.stats.barriers += 1

    def allreduce(self, value: np.ndarray | float, op: str = "sum"):
        """Allreduce over all ranks (sum/min/max), returning the same type.

        Unknown ``op`` strings are rejected with :class:`ValueError`
        before any rank-coordination happens, so a typo cannot leave the
        other ranks stuck at the collect barrier.
        """
        if op not in ALLREDUCE_OPS:
            raise ValueError(
                f"allreduce op must be one of {ALLREDUCE_OPS}, got {op!r}"
            )
        t0 = time.perf_counter()
        result = self._cluster._allreduce(self.rank, np.asarray(value), op)
        self.stats.comm_time_s += time.perf_counter() - t0
        self.stats.allreduces += 1
        if np.isscalar(value) or np.asarray(value).ndim == 0:
            return float(result)
        return result

    def gather(self, value, root: int = 0):
        """Gather arbitrary per-rank objects at the root (returns list or None).

        An out-of-range ``root`` is rejected with :class:`ValueError`
        before coordination, mirroring :meth:`allreduce`'s op check.
        """
        if not 0 <= root < self.size:
            raise ValueError(f"invalid gather root {root} for size {self.size}")
        t0 = time.perf_counter()
        out = self._cluster._gather(self.rank, value, root)
        self.stats.comm_time_s += time.perf_counter() - t0
        return out


class VirtualCluster:
    """A set of ranks executing one SPMD program on threads.

    Usage::

        cluster = VirtualCluster(6)
        results = cluster.run(lambda comm: program(comm, ...))

    ``run`` returns the per-rank return values; ``stats`` afterwards holds
    the per-rank :class:`CommStats`.

    ``recv_timeout_s`` sets the per-receive deadline for every rank's
    blocking/non-blocking receives; when left ``None`` it follows the
    program timeout passed to :meth:`run`, so a lost message can never
    outlive the run it belongs to.
    """

    #: Default program timeout of :meth:`run`, shared with the per-receive
    #: deadline when neither is overridden.
    DEFAULT_TIMEOUT_S = 600.0

    def __init__(
        self,
        size: int,
        recv_timeout_s: float | None = None,
        fault_plan: "FaultPlan | None" = None,
        sanitize: bool = False,
        failure_detector: "FailureDetector | None" = None,
    ):
        if size < 1:
            raise ValueError(f"cluster size must be >= 1, got {size}")
        if recv_timeout_s is not None and recv_timeout_s <= 0:
            raise ValueError(
                f"recv_timeout_s must be positive, got {recv_timeout_s}"
            )
        self.size = size
        #: Optional :class:`repro.chaos.faults.FaultPlan`; when set, every
        #: rank's comm is wrapped in a ``ChaosComm`` that injects the
        #: plan's faults.  Firing state lives on the plan, so a retried
        #: run with the same plan sees already-exhausted faults stay quiet.
        self.fault_plan = fault_plan
        #: Shared :class:`~repro.analysis.sanitizer.CommSanitizer` when
        #: ``sanitize=True``; every rank's comm is wrapped in a
        #: ``SanitizerComm`` feeding it, and :meth:`run` finalizes it
        #: into :attr:`sanitizer_report`.
        self.sanitizer = None
        if sanitize:
            # Lazy import: the analysis package is an optional layer on
            # top of the comm core, not a dependency of it.
            from ..analysis.sanitizer import CommSanitizer

            self.sanitizer = CommSanitizer(size)
        #: :class:`~repro.analysis.sanitizer.SanitizerReport` of the most
        #: recent :meth:`run` (``None`` unless ``sanitize=True``).
        self.sanitizer_report: "SanitizerReport | None" = None
        #: Optional :class:`~repro.resilience.detector.FailureDetector`.
        #: When set, every rank's comm is wrapped in a ``MonitoredComm``
        #: (innermost, under sanitizer and chaos) that feeds heartbeats
        #: and turns blocked receives into death-probing waits, and the
        #: runner confirms abnormal rank terminations to it.  When
        #: ``None`` (the default) no wrapper exists at all — the
        #: disabled path adds zero per-operation work.
        self.failure_detector = failure_detector
        if failure_detector is not None and failure_detector.size != size:
            raise ValueError(
                f"failure detector sized for {failure_detector.size} ranks "
                f"cannot monitor a {size}-rank cluster"
            )
        self._recv_timeout_s = recv_timeout_s
        self._run_timeout_s = self.DEFAULT_TIMEOUT_S
        self._mailboxes = [queue.Queue() for _ in range(size)]
        self._unmatched: list[list[tuple[int, int, np.ndarray]]] = [
            [] for _ in range(size)
        ]
        self._barrier = threading.Barrier(size)
        self._reduce_lock = threading.Lock()
        self._reduce_buffer: dict[str, object] = {}
        # Two distinct barriers delimit the collect and read phases of each
        # collective; cleanup happens strictly between a rank's read-phase
        # barrier and its next collect, which makes reuse race-free.
        self._collect_barrier = threading.Barrier(size)
        self._read_barrier = threading.Barrier(size)
        self._gather_buffer: dict[int, list] = {}
        self.stats: list[CommStats] = [CommStats() for _ in range(size)]

    @property
    def recv_timeout_s(self) -> float:
        """Effective per-receive deadline: the configured value, else the
        program timeout of the current/most recent :meth:`run`."""
        if self._recv_timeout_s is not None:
            return self._recv_timeout_s
        return self._run_timeout_s

    # -- internals ---------------------------------------------------------------

    def _mailbox(self, rank: int) -> queue.Queue:
        return self._mailboxes[rank]

    def _match(self, rank: int, source: int, tag: int, timeout: float) -> np.ndarray:
        # Check already-drained messages first.
        pending = self._unmatched[rank]
        for i, (src, t, data) in enumerate(pending):
            if src == source and t == tag:
                pending.pop(i)
                return data
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {rank}: no message from {source} tag {tag} "
                    f"within {timeout}s"
                )
            try:
                src, t, data = self._mailboxes[rank].get(timeout=remaining)
            except queue.Empty:
                continue
            if src == source and t == tag:
                return data
            pending.append((src, t, data))

    def _allreduce(self, rank: int, value: np.ndarray, op: str) -> np.ndarray:
        if op not in ALLREDUCE_OPS:
            raise ValueError(f"unsupported allreduce op {op!r}")
        if self.size == 1:
            return value.copy()
        with self._reduce_lock:
            self._reduce_buffer.setdefault("values", []).append(value)
        self._collect_barrier.wait()
        with self._reduce_lock:
            if "result" not in self._reduce_buffer:
                stack = np.stack(self._reduce_buffer.pop("values"))
                if op == "sum":
                    result = stack.sum(axis=0)
                elif op == "min":
                    result = stack.min(axis=0)
                else:
                    result = stack.max(axis=0)
                self._reduce_buffer["result"] = result
            result = np.array(self._reduce_buffer["result"], copy=True)
        self._read_barrier.wait()
        # Safe: every rank has copied the result; the next round's result
        # cannot be created before all ranks pass the next collect barrier,
        # which each rank only reaches after this pop.
        with self._reduce_lock:
            self._reduce_buffer.pop("result", None)
        return result

    def _gather(self, rank: int, value, root: int):
        if self.size == 1:
            return [value] if rank == root else [value]
        with self._reduce_lock:
            self._gather_buffer.setdefault(root, [None] * self.size)
            self._gather_buffer[root][rank] = value
        self._collect_barrier.wait()
        out = None
        if rank == root:
            with self._reduce_lock:
                out = list(self._gather_buffer[root])
        self._read_barrier.wait()
        with self._reduce_lock:
            self._gather_buffer.pop(root, None)
        return out

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        program: Callable[["VirtualComm"], object],
        timeout: float | None = None,
    ) -> list:
        """Run ``program(comm)`` on every rank; returns per-rank results.

        Any rank raising propagates the first exception after all threads
        finish or the timeout expires.  ``timeout`` (default
        :data:`DEFAULT_TIMEOUT_S`) also becomes the per-receive deadline
        unless the cluster was built with an explicit ``recv_timeout_s``.
        """
        if timeout is None:
            timeout = self.DEFAULT_TIMEOUT_S
        self._run_timeout_s = timeout
        results: list = [None] * self.size
        errors: list = [None] * self.size

        def runner(rank: int) -> None:
            comm = VirtualComm(self, rank)
            facade = comm
            if self.failure_detector is not None:
                # Innermost wrapper: probe slices stay invisible to the
                # sanitizer, and chaos faults disturb the *monitored*
                # stream.  Imported lazily like the other layers.
                from ..resilience.detector import MonitoredComm

                facade = MonitoredComm(facade, self.failure_detector)
            if self.sanitizer is not None:
                from ..analysis.sanitizer import SanitizerComm

                facade = SanitizerComm(facade, self.sanitizer)
            if self.fault_plan is not None:
                # Imported lazily: the chaos package is an optional layer
                # on top of the comm core, not a dependency of it.
                from ..chaos.faults import ChaosComm

                facade = ChaosComm(facade, self.fault_plan)
            try:
                results[rank] = program(facade)
            # Rank isolation: the first real failure is re-raised after all
            # threads join, so nothing is swallowed here.
            except BaseException as exc:  # repro: disable=R5
                errors[rank] = exc
                if self.failure_detector is not None:
                    if not isinstance(
                        exc, (threading.BrokenBarrierError, RankDeathError)
                    ):
                        # Confirm the death (secondary failures — broken
                        # barriers, observed peer deaths — are not deaths
                        # of *this* rank and must not be filed as such).
                        self.failure_detector.mark_dead(rank, exc)
                    # Either way this rank's program is gone: peers
                    # probing it fail fast (citing the primary death)
                    # instead of waiting out their full recv deadline.
                    self.failure_detector.mark_departed(rank)
                # Break the barriers so other ranks do not hang forever.
                self._barrier.abort()
                self._collect_barrier.abort()
                self._read_barrier.abort()
            finally:
                self.stats[rank] = comm.stats

        threads = [
            threading.Thread(target=runner, args=(r,), daemon=True)
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        try:
            for t in threads:
                t.join(timeout)
                if t.is_alive():
                    raise TimeoutError("virtual cluster run timed out")
        finally:
            # Finalize even when a rank failed or the run timed out: the
            # report of a disturbed run is exactly what a drill inspects.
            if self.sanitizer is not None:
                self.sanitizer_report = self.sanitizer.finalize()
        # Prefer the root-cause exception.  Three tiers: a rank's own
        # failure beats a peer-observed death (RankDeathError — the dead
        # rank's exception, when present, is the real cause), which beats
        # a broken barrier (pure secondary effect).  The failing rank is
        # attached so callers (the launcher) can wrap it in a typed error.
        real = [(r, e) for r, e in enumerate(errors) if e is not None
                and not isinstance(
                    e, (threading.BrokenBarrierError, RankDeathError)
                )]
        if real:
            rank, exc = real[0]
            exc.failed_rank = rank
            raise exc
        deaths = [(r, e) for r, e in enumerate(errors)
                  if isinstance(e, RankDeathError)]
        if deaths:
            # Attribute the failure to the *dead peer*, not the observer:
            # an unresponsive (hung, never-raising) rank surfaces only
            # through its peers' RankDeathErrors.
            rank, exc = deaths[0]
            exc.failed_rank = exc.rank
            raise exc
        for rank, exc in enumerate(errors):
            if exc is not None:
                exc.failed_rank = rank
                raise exc
        return results
