"""``specfem3D`` driver: run a global simulation from the command line.

Merged-mode analogue of SPECFEM's solver::

    python -m repro.apps.specfem --nex 8 --steps 100 --attenuation
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from ..config import constants
from ..config.parameters import SimulationParameters
from ..io.parfile import read_par_file
from ..solver.receivers import Station
from ..solver.sources import MomentTensorSource, gaussian_stf
from .merged_app import run_global_simulation

__all__ = ["default_source", "default_stations", "main"]


def default_source(depth_km: float = 100.0, m0: float = 1e20) -> MomentTensorSource:
    """A magnitude ~6.6 explosion below the north pole (demo source)."""
    return MomentTensorSource(
        position=(0.0, 0.0, constants.R_EARTH_KM - depth_km),
        moment=m0 * np.eye(3),
        stf=gaussian_stf(20.0),
        time_shift=50.0,
    )


def default_stations() -> list[Station]:
    """A small global network at 0/45/90 degrees epicentral distance."""
    r = constants.R_EARTH_KM
    return [
        Station("POLE", (0.0, 0.0, r)),
        Station("D45", (r / np.sqrt(2), 0.0, r / np.sqrt(2))),
        Station("D90", (r, 0.0, 0.0)),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--par-file", type=Path, default=None)
    parser.add_argument("--nex", type=int, default=8)
    parser.add_argument("--nproc", type=int, default=1)
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--attenuation", action="store_true")
    parser.add_argument("--oceans", action="store_true")
    parser.add_argument("--output", type=Path, default=None,
                        help="write seismograms as .npy here")
    args = parser.parse_args(argv)
    if args.par_file:
        params = read_par_file(args.par_file)
    else:
        params = SimulationParameters(
            nex_xi=args.nex,
            nproc_xi=args.nproc,
            attenuation=args.attenuation,
            oceans=args.oceans,
            nstep_override=args.steps,
        )
    result = run_global_simulation(
        params, sources=[default_source()], stations=default_stations()
    )
    print(f"mesher: {result.mesher_wall_s:.2f}s  "
          f"solver: {result.solver_wall_s:.2f}s  "
          f"dt={result.dt:.3f}s  steps={result.solver_result.n_steps}")
    peak = np.abs(result.seismograms).max()
    print(f"peak displacement over network: {peak:.3e} m")
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        np.save(args.output, result.seismograms)
        print(f"seismograms written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
