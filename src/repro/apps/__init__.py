"""Application drivers: mesher, solver, and the merged single application."""

from .merged_app import (
    GlobalSimulationResult,
    run_global_simulation,
    run_legacy_two_program,
)
from .meshfem import mesh_globe_to_databases
from .specfem import default_source, default_stations

__all__ = [
    "GlobalSimulationResult",
    "run_global_simulation",
    "run_legacy_two_program",
    "mesh_globe_to_databases",
    "default_source",
    "default_stations",
]
