"""The merged application: mesher + solver in one process (Section 4.1).

``run_global_simulation`` is the package's one-call entry point: it meshes
the globe, hands the mesh to the solver through memory (no intermediate
files — the paper's fix), runs the time loop, and returns seismograms and
accounting.  The legacy two-program mode (mesh -> files -> solve) lives in
:func:`run_legacy_two_program` for the A-IO ablation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config.parameters import SimulationParameters
from ..io.meshfiles import (
    DiskUsage,
    read_slice_database,
    rebuild_region_mesh,
    write_slice_database,
)
from ..mesh.mesher import GlobalMesh, build_global_mesh
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..solver.receivers import Station
from ..solver.solver import GlobalSolver, SolverResult

__all__ = [
    "GlobalSimulationResult",
    "run_global_simulation",
    "run_batched_simulation",
    "run_legacy_two_program",
]


@dataclass
class GlobalSimulationResult:
    """Seismograms plus the stage accounting of one merged run."""

    solver_result: SolverResult
    mesh: GlobalMesh
    mesher_wall_s: float
    solver_wall_s: float
    disk: DiskUsage
    #: The live solver (final wavefields, mass matrices) for post-processing.
    solver: GlobalSolver | None = None
    #: Telemetry of a traced run (``trace=True``): the span tracer and the
    #: per-timestep metrics registry; both None for untraced runs.
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None

    @property
    def seismograms(self) -> np.ndarray | None:
        return self.solver_result.seismograms

    @property
    def dt(self) -> float:
        return self.solver_result.dt

    def seismogram(self, name: str) -> np.ndarray:
        return self.solver_result.receivers.seismogram(name)

    def export_trace(self, directory: str | Path, stem: str = "trace"):
        """Write ``<stem>.jsonl`` and ``<stem>.chrome.json`` for this run.

        Returns the two paths.  Raises if the run was not traced.
        """
        from ..obs.export import write_chrome_trace, write_jsonl

        if self.tracer is None:
            raise ValueError("run was not traced; pass trace=True")
        directory = Path(directory)
        jsonl = write_jsonl(
            directory / f"{stem}.jsonl", [self.tracer], metrics=self.metrics
        )
        chrome = write_chrome_trace(
            directory / f"{stem}.chrome.json", [self.tracer]
        )
        return jsonl, chrome


def run_global_simulation(
    params: SimulationParameters,
    sources: list | None = None,
    stations: list[Station] | None = None,
    n_steps: int | None = None,
    track_energy: bool = False,
    trace: bool = False,
    mesh: GlobalMesh | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    stream=None,
) -> GlobalSimulationResult:
    """Mesh and solve in one process with in-memory handoff.

    With ``trace=True`` the whole pipeline records into one tracer and
    metrics registry (returned on the result; see
    :meth:`GlobalSimulationResult.export_trace`).  Tracing is off by
    default and the disabled path is a no-op tracer.  An existing
    ``tracer``/``metrics`` pair (e.g. a campaign's shared registry) may be
    passed instead and implies tracing into it.

    ``mesh`` short-circuits the mesher with a pre-built global mesh — the
    campaign layer's content-addressed cache uses this to amortise one
    expensive mesh across many events.  The mesh must have been built from
    mesh-equivalent parameters; a mismatch is rejected.

    ``stream`` (a :class:`~repro.obs.stream.StreamingTelemetry`) samples
    the solver loop per step; the caller owns and closes it.
    """
    if tracer is None and trace:
        tracer = Tracer(pid=0)
    if metrics is None and trace:
        metrics = MetricsRegistry()
    t0 = time.perf_counter()
    if mesh is None:
        mesh = build_global_mesh(params, tracer=tracer)
    else:
        # Lazy import: campaign sits above apps in the layer diagram.
        from ..campaign.mesh_cache import mesh_cache_key

        if mesh_cache_key(mesh.params) != mesh_cache_key(params):
            raise ValueError(
                "pre-built mesh was generated from mesh-incompatible "
                "parameters; rebuild or fix the cache key"
            )
        if metrics is not None:
            metrics.counter("mesher.reused").add(1)
    mesher_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    solver = GlobalSolver(
        mesh,
        params,
        sources=sources,
        stations=stations,
        tracer=tracer,
        metrics=metrics,
        stream=stream,
    )
    result = solver.run(n_steps=n_steps, track_energy=track_energy)
    solver_s = time.perf_counter() - t1
    if metrics is not None:
        metrics.gauge("mesher.wall_s").set(mesher_s)
        metrics.gauge("solver.wall_s").set(solver_s)
    return GlobalSimulationResult(
        solver_result=result,
        mesh=mesh,
        mesher_wall_s=mesher_s,
        solver_wall_s=solver_s,
        disk=DiskUsage(files=0, bytes=0, wall_s=0.0),
        solver=solver,
        tracer=tracer,
        metrics=metrics,
    )


def run_batched_simulation(
    params: SimulationParameters,
    event_sources: list[list],
    stations: list[Station] | None = None,
    n_steps: int | None = None,
    trace: bool = False,
    mesh: GlobalMesh | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    stream=None,
) -> GlobalSimulationResult:
    """Run B events through ONE event-batched solver on a shared mesh.

    ``event_sources[b]`` is event b's source list.  The mesh is built (or
    reused via ``mesh``) once; the solver carries fields with a leading
    event axis and sweeps all events through each kernel pass, so the
    mesh, geometry factors, and kernel setup are amortised B ways
    (docs/batching.md).  The result's ``seismograms`` are
    ``(B, n_stations, n_steps, 3)``; per-event seismograms come from
    ``result.solver_result.receivers.event_receiver_set(b)`` (or
    ``.seismogram(name, event=b)``) and are bit-identical to B separate
    :func:`run_global_simulation` calls with ``sources=event_sources[b]``.
    """
    if tracer is None and trace:
        tracer = Tracer(pid=0)
    if metrics is None and trace:
        metrics = MetricsRegistry()
    t0 = time.perf_counter()
    if mesh is None:
        mesh = build_global_mesh(params, tracer=tracer)
    else:
        from ..campaign.mesh_cache import mesh_cache_key

        if mesh_cache_key(mesh.params) != mesh_cache_key(params):
            raise ValueError(
                "pre-built mesh was generated from mesh-incompatible "
                "parameters; rebuild or fix the cache key"
            )
        if metrics is not None:
            metrics.counter("mesher.reused").add(1)
    mesher_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    solver = GlobalSolver(
        mesh,
        params,
        stations=stations,
        tracer=tracer,
        metrics=metrics,
        stream=stream,
        event_sources=event_sources,
    )
    result = solver.run(n_steps=n_steps)
    solver_s = time.perf_counter() - t1
    if metrics is not None:
        metrics.gauge("mesher.wall_s").set(mesher_s)
        metrics.gauge("solver.wall_s").set(solver_s)
        metrics.gauge("batch.events").set(float(len(event_sources)))
    return GlobalSimulationResult(
        solver_result=result,
        mesh=mesh,
        mesher_wall_s=mesher_s,
        solver_wall_s=solver_s,
        disk=DiskUsage(files=0, bytes=0, wall_s=0.0),
        solver=solver,
        tracer=tracer,
        metrics=metrics,
    )


def run_legacy_two_program(
    params: SimulationParameters,
    directory: str | Path,
    sources: list | None = None,
    stations: list[Station] | None = None,
    n_steps: int | None = None,
) -> GlobalSimulationResult:
    """Legacy v4.0 mode: mesher writes databases, solver reads them back.

    Runs per-slice databases through the real filesystem, then rebuilds a
    merged mesh from the files for the serial solver — every byte of the
    handoff hits disk, as it did before the merge.
    """
    from ..cubed_sphere.topology import SliceGrid
    from ..mesh.mesher import build_slice_mesh
    from ..mesh.numbering import build_global_numbering
    from ..mesh.element import RegionMesh
    from ..model.prem import RegionCode

    directory = Path(directory)
    grid = SliceGrid(params.nproc_xi)
    disk = DiskUsage()
    t0 = time.perf_counter()
    for rank in range(grid.nproc_total):
        slice_mesh = build_slice_mesh(params, grid.address_of(rank))
        disk += write_slice_database(slice_mesh, rank, directory)
    mesher_s = time.perf_counter() - t0

    # Solver phase: read every database back, merge, renumber, solve.
    t1 = time.perf_counter()
    per_region: dict[int, list] = {r: [] for r in RegionCode.NAMES}
    for rank in range(grid.nproc_total):
        payloads, usage = read_slice_database(rank, directory)
        disk += usage
        for region, data in payloads.items():
            per_region[region].append(rebuild_region_mesh(region, data))
    regions: dict[int, RegionMesh] = {}
    owners: dict[int, np.ndarray] = {}
    for region, meshes in per_region.items():
        xyz = np.concatenate([m.xyz for m in meshes], axis=0)
        ibool, nglob = build_global_numbering(xyz)
        regions[region] = RegionMesh(
            region=region,
            xyz=xyz,
            ibool=ibool,
            nglob=nglob,
            rho=np.concatenate([m.rho for m in meshes], axis=0),
            kappa=np.concatenate([m.kappa for m in meshes], axis=0),
            mu=np.concatenate([m.mu for m in meshes], axis=0),
            q_mu=np.concatenate([m.q_mu for m in meshes], axis=0),
        )
        owners[region] = np.concatenate(
            [np.full(m.nspec, r, dtype=np.int64) for r, m in enumerate(meshes)]
        )
    mesh = GlobalMesh(params=params, regions=regions, slice_of_element=owners)
    solver = GlobalSolver(mesh, params, sources=sources, stations=stations)
    result = solver.run(n_steps=n_steps)
    solver_s = time.perf_counter() - t1
    return GlobalSimulationResult(
        solver_result=result,
        mesh=mesh,
        mesher_wall_s=mesher_s,
        solver_wall_s=solver_s,
        disk=disk,
        solver=solver,
    )
