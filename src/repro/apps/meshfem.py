"""``meshfem3D`` driver: mesh the globe and write (or keep) the databases.

Command-line analogue of SPECFEM's mesher::

    python -m repro.apps.meshfem --par-file Par_file --output DATABASES/

Without ``--output`` the mesh is built and summarised only (merged mode
keeps it in memory; this driver exists for the legacy two-program flow).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..config.parameters import SimulationParameters
from ..cubed_sphere.topology import SliceGrid
from ..io.meshfiles import DiskUsage, write_slice_database
from ..io.parfile import read_par_file
from ..mesh.mesher import build_slice_mesh

__all__ = ["mesh_globe_to_databases", "main"]


def mesh_globe_to_databases(
    params: SimulationParameters, output: str | Path | None
) -> tuple[int, DiskUsage]:
    """Mesh every slice; write databases if ``output`` given.

    Returns (total elements, disk usage).
    """
    grid = SliceGrid(params.nproc_xi)
    disk = DiskUsage()
    total_elements = 0
    for rank in range(grid.nproc_total):
        slice_mesh = build_slice_mesh(params, grid.address_of(rank))
        total_elements += slice_mesh.nspec_total
        if output is not None:
            disk += write_slice_database(slice_mesh, rank, output)
    return total_elements, disk


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--par-file", type=Path, help="Par_file to read")
    parser.add_argument("--nex", type=int, default=8, help="NEX_XI (if no Par_file)")
    parser.add_argument("--nproc", type=int, default=1, help="NPROC_XI")
    parser.add_argument("--output", type=Path, default=None,
                        help="database directory (legacy mode)")
    args = parser.parse_args(argv)
    if args.par_file:
        params = read_par_file(args.par_file)
    else:
        params = SimulationParameters(nex_xi=args.nex, nproc_xi=args.nproc)
    elements, disk = mesh_globe_to_databases(params, args.output)
    print(f"meshed {elements} spectral elements over "
          f"{6 * params.nproc_xi**2} slices "
          f"(shortest period ~{params.shortest_period_s:.1f}s)")
    if args.output is not None:
        print(f"wrote {disk.files} files, {disk.bytes / 1e6:.1f} MB "
              f"in {disk.wall_s:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
